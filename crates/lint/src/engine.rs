//! The rule engine: file analysis shared by every rule, the suppression
//! grammar, and the workspace driver.
//!
//! ## Suppression grammar
//!
//! ```text
//! // lint:allow(<rule-id>) reason text, at least one word
//! ```
//!
//! A suppression in a *trailing* comment applies to its own line. A
//! comment that is alone on its line applies to the next line that
//! holds code (blank and comment lines are skipped over, so several
//! standalone suppressions can stack above one statement). The reason
//! is mandatory: a reasonless `lint:allow(<rule-id>)` is itself a diagnostic
//! (`bad-suppression`), as is an unknown rule id. Under `--deny-all`
//! a suppression that matched nothing is reported too
//! (`unused-suppression`) — every allowance must stay load-bearing.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lex::{lex, LexError, TokKind, Token};
use crate::rules;

/// Rule ids for the engine's own diagnostics.
pub const RULE_BAD_SUPPRESSION: &str = "bad-suppression";
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";
pub const RULE_LEX_ERROR: &str = "lex-error";

/// Every rule id the engine knows, including its own meta rules. The
/// workspace meta-test checks suppression comments against this list.
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = rules::ALL_RULES.iter().map(|r| r.id).collect();
    ids.push(RULE_BAD_SUPPRESSION);
    ids.push(RULE_UNUSED_SUPPRESSION);
    ids.push(RULE_LEX_ERROR);
    ids
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Which rule fired.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Where a file sits in its crate — rules scope themselves on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The owning crate's directory name under `crates/`.
    pub crate_name: String,
    /// Under `src/bin/` — driver code, exempt from library rules.
    pub is_bin: bool,
}

/// Everything a rule needs to scan one file: the token stream plus the
/// pre-computed structural facts every rule would otherwise re-derive.
pub struct FileCtx<'s> {
    pub meta: &'s FileMeta,
    pub source: &'s str,
    pub tokens: &'s [Token],
    /// Byte ranges covered by `#[cfg(test)]` modules and `#[test]`/
    /// `#[bench]` functions — library rules skip findings inside them.
    pub test_ranges: &'s [(usize, usize)],
    /// Spans of every `fn` body: (name-token index, body start byte,
    /// body end byte).
    pub fn_bodies: &'s [(usize, usize, usize)],
}

impl FileCtx<'_> {
    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(self.source)
    }

    /// Whether token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.source) == word)
    }

    /// Whether token `i` is a punct with exactly this byte.
    pub fn is_punct(&self, i: usize, ch: char) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text(self.source).starts_with(ch))
    }

    /// Whether byte offset `at` falls inside test-only code.
    pub fn in_test_code(&self, at: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// The index of the *next* non-comment token at or after `i`.
    pub fn skip_comments(&self, mut i: usize) -> usize {
        while self
            .tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        {
            i += 1;
        }
        i
    }

    /// A finding at token `i`.
    pub fn finding(&self, i: usize, rule: &'static str, message: String) -> Finding {
        let t = &self.tokens[i];
        Finding {
            file: self.meta.rel_path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
        }
    }
}

/// A parsed `lint:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub file: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Rule id inside the parentheses (not validated here).
    pub rule: String,
    /// Justification text after the closing paren (may be empty —
    /// the engine reports that).
    pub reason: String,
    /// The line findings must be on for this suppression to match.
    pub target_line: u32,
}

/// The result of linting one file or a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, in file/line order.
    pub findings: Vec<Finding>,
    /// Count of findings silenced by a suppression.
    pub suppressed: usize,
    /// Suppressions that silenced nothing (reported as findings only
    /// in strict mode, but always available for inspection).
    pub unused: Vec<Suppression>,
    /// Every suppression parsed, matched or not.
    pub suppressions: Vec<Suppression>,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed += other.suppressed;
        self.unused.extend(other.unused);
        self.suppressions.extend(other.suppressions);
        self.files += other.files;
    }
}

/// Extract suppression directives from the token stream. Only line
/// comments participate: block comments are prose.
fn parse_suppressions(meta: &FileMeta, source: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let body = tok.text(source).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let mut emit_bad = |msg: &str| {
            bad.push(Finding {
                file: meta.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                rule: RULE_BAD_SUPPRESSION,
                message: msg.to_string(),
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            emit_bad("malformed suppression: expected `lint:allow(<rule-id>) reason`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            emit_bad("malformed suppression: missing `)`");
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if rule.is_empty() {
            emit_bad("malformed suppression: empty rule id");
            continue;
        }
        if !known_rule_ids().contains(&rule.as_str()) {
            emit_bad(&format!("suppression names unknown rule `{rule}`"));
            continue;
        }
        if reason.is_empty() {
            emit_bad(&format!(
                "suppression of `{rule}` carries no reason — say why the finding is acceptable"
            ));
            continue;
        }
        // Trailing comment → applies to its own line. Standalone comment
        // → applies to the next code-bearing line (scan past comments).
        let standalone = !tokens[..i].iter().any(|t| {
            t.line == tok.line
                && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        });
        let target_line = if standalone {
            tokens[i + 1..]
                .iter()
                .find(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
                .map_or(tok.line, |t| t.line)
        } else {
            tok.line
        };
        out.push(Suppression {
            file: meta.rel_path.clone(),
            line: tok.line,
            rule,
            reason,
            target_line,
        });
    }
    (out, bad)
}

/// Byte ranges of test-only code: `#[cfg(test)]`-attributed items and
/// `#[test]`/`#[bench]` functions. Token-level: find the attribute,
/// then the next `{` at module/item level, then its matching `}`.
fn test_ranges(source: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text(source) == "#") {
            i += 1;
            continue;
        }
        // `#[cfg(test)]` / `#[test]` / `#[bench]` — match loosely: an
        // attribute whose token texts contain `test` or `bench` inside
        // the brackets, with `cfg(test)` and bare `test` both caught.
        let Some(open) = tokens.get(i + 1).filter(|t| t.text(source) == "[") else {
            i += 1;
            continue;
        };
        let _ = open;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        let mut negated = false;
        while j < tokens.len() {
            match tokens[j].text(source) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" | "bench" if tokens[j].kind == TokKind::Ident => is_test_attr = true,
                // `#[cfg(not(test))]` guards *non*-test code.
                "not" if tokens[j].kind == TokKind::Ident => negated = true,
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = is_test_attr && !negated;
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then find the item's body braces.
        let mut k = j + 1;
        while k < tokens.len() && tokens[k].text(source) == "#" {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                match tokens[k].text(source) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let mut body_start = None;
        while k < tokens.len() {
            match tokens[k].text(source) {
                "{" => {
                    if body_start.is_none() {
                        body_start = Some(tokens[k].start);
                    }
                    brace_depth += 1;
                }
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                ";" if brace_depth == 0 => break, // e.g. `#[cfg(test)] use …;`
                _ => {}
            }
            k += 1;
        }
        if let (Some(s), Some(end_tok)) = (body_start, tokens.get(k)) {
            ranges.push((s, end_tok.end));
        }
        i = k + 1;
    }
    ranges
}

/// Spans of `fn` bodies: (index of the name token, body byte range).
fn fn_bodies(source: &str, tokens: &[Token]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Ident && tokens[i].text(source) == "fn") {
            i += 1;
            continue;
        }
        let name_ix = i + 1;
        if !tokens.get(name_ix).is_some_and(|t| t.kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        // Scan to the body `{`, skipping the parameter list, return
        // type, and where clauses; a `;` first means a trait signature.
        let mut j = name_ix + 1;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut body = None;
        while j < tokens.len() {
            let t = tokens[j].text(source);
            match t {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if paren == 0 => {
                    body = Some(j);
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            match tokens[k].text(source) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(end_tok) = tokens.get(k) {
            out.push((name_ix, tokens[open].start, end_tok.end));
        }
        i = open + 1;
    }
    out
}

/// Lint a single source text under `meta`.
pub fn lint_source(meta: &FileMeta, source: &str, cfg: &Config) -> Report {
    let mut report = Report {
        files: 1,
        ..Report::default()
    };
    let tokens = match lex(source) {
        Ok(t) => t,
        Err(LexError { line, col, message }) => {
            report.findings.push(Finding {
                file: meta.rel_path.clone(),
                line,
                col,
                rule: RULE_LEX_ERROR,
                message,
            });
            return report;
        }
    };
    let (suppressions, bad) = parse_suppressions(meta, source, &tokens);
    let ranges = test_ranges(source, &tokens);
    let bodies = fn_bodies(source, &tokens);
    let ctx = FileCtx {
        meta,
        source,
        tokens: &tokens,
        test_ranges: &ranges,
        fn_bodies: &bodies,
    };

    let mut raw: Vec<Finding> = bad;
    for rule in rules::ALL_RULES {
        if (rule.applies)(cfg, meta) {
            raw.extend((rule.check)(&ctx, cfg));
        }
    }
    raw.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));

    // Apply suppressions. A suppression matches findings of its rule on
    // its target line; `bad-suppression` findings cannot be suppressed.
    let mut used = vec![false; suppressions.len()];
    for f in raw {
        let slot = suppressions.iter().enumerate().find(|(_, s)| {
            s.rule == f.rule && s.target_line == f.line && f.rule != RULE_BAD_SUPPRESSION
        });
        match slot {
            Some((ix, _)) => {
                used[ix] = true;
                report.suppressed += 1;
            }
            None => report.findings.push(f),
        }
    }
    for (ix, s) in suppressions.iter().enumerate() {
        if !used[ix] {
            report.unused.push(s.clone());
        }
    }
    report.suppressions = suppressions;
    report
}

/// Walk `crates/*/src` under `root` and lint every `.rs` file.
///
/// Skipped: the `vendor/` stand-ins (external API shims, not house
/// code), `crates/lint/fixtures/` (intentional violations), and
/// anything outside `crates/*/src`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Report {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => Vec::new(),
    };
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let Some(crate_name) = crate_dir.file_name().and_then(|n| n.to_str()).map(String::from)
        else {
            continue;
        };
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = BTreeMap::new();
        collect_rs(&src, &mut files);
        for (path, _) in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
            let meta = FileMeta {
                rel_path: rel,
                crate_name: crate_name.clone(),
                is_bin,
            };
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            report.merge(lint_source(&meta, &source, cfg));
        }
    }
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    report
}

fn collect_rs(dir: &Path, out: &mut BTreeMap<PathBuf, ()>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path, ());
        }
    }
}
