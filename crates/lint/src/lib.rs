//! Workspace invariant linter.
//!
//! Every headline claim this reproduction makes — sharded ≡ sequential,
//! streaming ≡ eager, resume ≡ uninterrupted, cache-on ≡ cache-off —
//! rests on bit-for-bit determinism, and real leaks (the `pick_distinct`
//! HashSet-iteration-order bug) have slipped past review before. This
//! crate enforces those contracts *statically*: a hand-rolled Rust
//! lexer feeds a token-stream rule engine that scans every library
//! source in the workspace and fails the build on any unsuppressed
//! finding.
//!
//! See [`rules::ALL_RULES`] for the catalog, DESIGN.md ("Static
//! invariant enforcement") for the rationale, and `fixtures/` for each
//! rule's positive/negative exemplars.
//!
//! Run it as `cargo run -p lint` (add `-- --deny-all` to also fail on
//! suppressions that no longer suppress anything).

pub mod config;
pub mod engine;
pub mod lex;
pub mod rules;

pub use config::Config;
pub use engine::{
    known_rule_ids, lint_source, lint_workspace, FileMeta, Finding, Report, Suppression,
};
pub use rules::{rule_by_id, Rule, ALL_RULES};

/// Locate the workspace root from the linter's own manifest directory —
/// works both via `cargo run -p lint` and from in-process tests.
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}
