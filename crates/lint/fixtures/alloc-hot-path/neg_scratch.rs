use core::fmt::Write;

// The scratch-buffer idiom: the caller owns the buffer, the hot path
// only appends — zero allocations at steady state.
pub fn render_macro(&mut self, name: &str, out: &mut String) {
    out.clear();
    let _ = write!(out, "{}.", name);
    out.push_str(self.origin_ascii());
}
