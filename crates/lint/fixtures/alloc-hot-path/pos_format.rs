// Per-call heap construction on a path under the allocation budget:
// each of these shows up in the counting-allocator test as a regression.
pub fn render_macro(&mut self, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}.{}", name, self.origin));
    let labels: Vec<String> = name.split('.').map(|l| l.to_string()).collect();
    labels.join(".")
}
