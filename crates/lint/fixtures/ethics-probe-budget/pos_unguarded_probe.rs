// An SMTP transaction with no ethics reference anywhere in the
// function: nothing ties this contact to the §6.1 budget.
pub fn blast(mta: &mut Mta, source: IpAddr) -> Option<Reply> {
    match mta.connect(source) {
        ConnectDecision::Refused => None,
        _ => {
            let (mut session, banner) = mta.open_session();
            let _ = session.handle_message(b"");
            Some(banner)
        }
    }
}
