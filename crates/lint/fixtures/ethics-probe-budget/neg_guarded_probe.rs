// The same transaction routed through the ethics guard: admitted
// before the contact, released after.
pub fn probe_once(&mut self, mta: &mut Mta, ip: IpAddr) -> Option<Reply> {
    self.ethics.admit(ip);
    let outcome = match mta.connect(self.source_ip) {
        ConnectDecision::Refused => None,
        _ => {
            let (mut session, banner) = mta.open_session();
            let _ = session.handle_message(b"");
            Some(banner)
        }
    };
    self.ethics.release(ip);
    outcome
}
