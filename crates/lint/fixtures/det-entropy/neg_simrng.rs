// House style: all randomness flows from identity-derived SimRng
// streams, so a probe's dice depend only on what the probe *is*.
pub fn jitter_ms(base: &SimRng, host: u32) -> u64 {
    let mut rng = base.fork(&label(host));
    rng.below(100)
}
