pub fn jitter_ms() -> u64 {
    // OS entropy: every run rolls different dice, so no run can be
    // replayed or compared against a reference.
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}
