pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("caller validated digits")
}
