pub fn parse_port(s: &str) -> u16 {
    // An empty message is an unwrap wearing a disguise.
    s.parse().expect("")
}
