// A float accumulator in a mergeable aggregate: (a + b) + c != a + (b
// + c) in f64, so shard merge order leaks into the merged value.
pub struct LatencyAggregate {
    pub count: u64,
    pub mean_acc: f64,
    pub m2: f64,
}
