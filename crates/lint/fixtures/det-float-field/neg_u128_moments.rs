// The house style: integer sums and u128 moment squares merge
// associatively; floats appear only in derived accessors.
pub struct LatencyAggregate {
    pub count: u64,
    pub sum: u64,
    pub sum_sq: u128,
}

impl LatencyAggregate {
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    pub fn variance(&self) -> f64 {
        let n = self.count as f64;
        let mean = self.mean();
        (self.sum_sq as f64 / n) - mean * mean
    }
}
