pub fn parse_port(s: &str) -> u16 {
    // A bare unwrap says nothing about why failure is impossible.
    s.parse().unwrap()
}
