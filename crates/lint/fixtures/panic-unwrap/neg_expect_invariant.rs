pub fn source_ip() -> IpAddr {
    // expect("<invariant>") is the house style for truly-infallible
    // cases; real fallibility propagates through ProbeError.
    "203.0.113.25".parse().expect("static address is valid")
}

pub fn parse_port(s: &str) -> Result<u16, ProbeError> {
    s.parse().map_err(|_| ProbeError::Malformed)
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: a panic *is* the failure report.
    #[test]
    fn round_trips() {
        assert_eq!(super::parse_port("25").unwrap(), 25);
    }
}
