// Simulated time is a pure function of the event stream: advancing the
// shared SimClock is deterministic under any shard interleaving.
pub fn time_a_probe(clock: &SimClock) -> SimDuration {
    let started = clock.now();
    expensive(clock);
    clock.now().since(started)
}
