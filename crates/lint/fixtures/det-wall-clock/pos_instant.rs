use std::time::Instant;

pub fn time_a_probe() -> u64 {
    // Wall-clock reads make shard timing observable: two workers racing
    // the host clock can never merge bit-for-bit.
    let started = Instant::now();
    expensive();
    started.elapsed().as_micros() as u64
}
