use std::collections::HashMap;

pub struct Ranks {
    by_host: HashMap<u32, u32>,
}

impl Ranks {
    // A for-loop over a hash map observes the per-process seed order
    // directly; no after-the-fact sort can redeem the body.
    pub fn emit(&self, out: &mut Vec<u32>) {
        for (host, rank) in &self.by_host {
            out.push(host ^ rank);
        }
    }
}
