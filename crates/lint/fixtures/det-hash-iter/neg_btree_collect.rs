use std::collections::{BTreeMap, HashMap};

pub struct Mirror {
    live: HashMap<u32, u64>,
}

impl Mirror {
    // Collecting into a BTreeMap imposes key order regardless of the
    // hash map's visit order.
    pub fn snapshot(&self) -> BTreeMap<u32, u64> {
        self.live.iter().map(|(&k, &v)| (k, v)).collect()
    }
}
