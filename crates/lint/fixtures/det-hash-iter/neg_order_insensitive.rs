use std::collections::HashMap;

pub struct Counters {
    counts: HashMap<u32, u64>,
}

impl Counters {
    // Order-insensitive terminals never observe iteration order.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    pub fn peak(&self) -> Option<u64> {
        self.counts.values().copied().max()
    }

    pub fn has(&self, host: u32) -> bool {
        self.counts.contains_key(&host)
    }
}
