// The fixed `pick_distinct`: the HashSet draw is sorted before the
// order can escape — the ordered-collect idiom the rule looks for.
use std::collections::HashSet;

pub fn pick_distinct(rng: &mut SimRng, bound: usize, count: usize) -> Vec<usize> {
    let mut seen = HashSet::new();
    while seen.len() < count {
        seen.insert(rng.below(bound as u64) as usize);
    }
    let mut out: Vec<usize> = seen.into_iter().collect();
    out.sort_unstable();
    out
}
