// Reconstruction of the historical ISSUE-4 `pick_distinct` bug: the
// sparse branch drew indices into a HashSet and returned them in the
// set's iteration order, which depends on the per-process hash seed.
// The leak reached 2-Week rank assignment and was only caught by the
// report golden-snapshot test. This rule catches it at the source.
use std::collections::HashSet;

pub fn pick_distinct(rng: &mut SimRng, bound: usize, count: usize) -> Vec<usize> {
    let mut seen = HashSet::new();
    while seen.len() < count {
        seen.insert(rng.below(bound as u64) as usize);
    }
    let out: Vec<usize> = seen.into_iter().collect();
    out
}
