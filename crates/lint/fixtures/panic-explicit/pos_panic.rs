pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "no-msg",
        1 => "blank-msg",
        _ => panic!("bad kind {kind}"),
    }
}

pub fn not_yet() -> u32 {
    todo!()
}
