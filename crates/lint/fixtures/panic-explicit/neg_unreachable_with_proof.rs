pub fn classify(kind: u8) -> Result<&'static str, ProbeError> {
    match kind {
        0 => Ok("no-msg"),
        1 => Ok("blank-msg"),
        _ => Err(ProbeError::Malformed),
    }
}

pub fn tag(test: ProbeTest) -> u8 {
    match test {
        ProbeTest::NoMsg => 0,
        ProbeTest::BlankMsg => 1,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rejects_unknown_kinds() {
        // Tests may panic: that is what a failing assertion is.
        if super::classify(9).is_ok() {
            panic!("kind 9 must not classify");
        }
    }
}
