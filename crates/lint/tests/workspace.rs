//! The tier-1 gate: the whole workspace must lint clean, in-process.
//!
//! This is the same scan `cargo run -p lint -- --deny-all` performs in
//! CI, run as a test so `cargo test` alone enforces the invariants.

use lint::{known_rule_ids, lint_workspace, Config};

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(&lint::workspace_root(), &Config::workspace());
    assert!(report.files >= 80, "expected to scan the whole workspace, saw {} files", report.files);
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_workspace_suppression_is_load_bearing_and_justified() {
    let report = lint_workspace(&lint::workspace_root(), &Config::workspace());
    // The engine already rejects reasonless directives as findings; on a
    // clean tree every parsed suppression therefore carries a reason.
    for s in &report.suppressions {
        assert!(
            !s.reason.is_empty(),
            "{}:{}: suppression of `{}` without reason",
            s.file,
            s.line,
            s.rule
        );
        assert!(
            s.reason.split_whitespace().count() >= 2,
            "{}:{}: reason `{}` is too terse to justify anything",
            s.file,
            s.line,
            s.reason
        );
    }
    assert!(
        report.unused.is_empty(),
        "suppressions that silence nothing:\n{}",
        report
            .unused
            .iter()
            .map(|s| format!("  {}:{} lint:allow({})", s.file, s.line, s.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Meta-test (ISSUE satellite): every rule id appearing in a
/// `lint:allow(...)` comment anywhere in the repo — library sources,
/// integration tests, examples — names a rule that actually exists.
#[test]
fn every_suppression_comment_names_a_real_rule() {
    let root = lint::workspace_root();
    let known = known_rule_ids();
    let mut checked = 0usize;
    let mut stack = vec![root.join("crates"), root.join("tests"), root.join("examples")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                // Vendored stand-ins are not house code.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let Ok(src) = std::fs::read_to_string(&path) else { continue };
                for (ln, line) in src.lines().enumerate() {
                    let mut rest = line;
                    while let Some(at) = rest.find("lint:allow(") {
                        let tail = &rest[at + "lint:allow(".len()..];
                        let Some(close) = tail.find(')') else { break };
                        let id = tail[..close].trim();
                        // Only kebab-shaped ids count: diagnostic format
                        // strings (`lint:allow({})`) and the engine's own
                        // parser handle the malformed shapes. Fixture and
                        // test sources may also demonstrate the
                        // unknown-rule diagnostic itself.
                        let kebab = !id.is_empty()
                            && id
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
                        if kebab && id != "no-such-rule" {
                            assert!(
                                known.contains(&id),
                                "{}:{}: suppression names unknown rule `{id}`",
                                path.display(),
                                ln + 1
                            );
                            checked += 1;
                        }
                        rest = &tail[close..];
                    }
                }
            }
        }
    }
    assert!(checked > 0, "expected at least one suppression in the workspace");
}

/// The rule catalog itself stays well-formed: unique kebab-case ids,
/// non-empty summaries, and a fixture directory per rule.
#[test]
fn rule_catalog_is_well_formed() {
    let mut seen = std::collections::BTreeSet::new();
    for rule in lint::ALL_RULES {
        assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
        assert!(
            rule.id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "rule id `{}` is not kebab-case",
            rule.id
        );
        assert!(!rule.summary.is_empty());
        let dir = lint::workspace_root().join("crates/lint/fixtures").join(rule.id);
        assert!(dir.is_dir(), "rule `{}` has no fixture directory", rule.id);
    }
}
