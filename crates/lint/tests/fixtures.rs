//! The fixture corpus: every rule must both fire on its positive
//! snippets and stay silent on its negative ones.
//!
//! Fixture layout: `fixtures/<rule-id>/pos_*.rs` must yield at least
//! one finding of that rule; `fixtures/<rule-id>/neg_*.rs` must yield
//! none. Scoping is synthesized per rule (fixtures pose as the crate /
//! file list the rule watches).

use lint::{lint_source, Config, FileMeta};

fn scoped(rule: &str, rel_path: &str) -> (Config, FileMeta) {
    let mut cfg = Config::workspace();
    let crate_name = match rule {
        "ethics-probe-budget" => "prober",
        _ => "world",
    };
    match rule {
        "det-float-field" => cfg.aggregate_files.push(rel_path.to_string()),
        "alloc-hot-path" => cfg.alloc_files.push((rel_path.to_string(), Vec::new())),
        _ => {}
    }
    let meta = FileMeta {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        is_bin: false,
    };
    (cfg, meta)
}

#[test]
fn every_rule_fires_on_pos_and_stays_silent_on_neg() {
    let dir = lint::workspace_root().join("crates/lint/fixtures");
    let mut rules_seen = 0usize;
    let mut cases = 0usize;
    let mut rule_dirs: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    rule_dirs.sort();
    assert!(!rule_dirs.is_empty(), "fixture corpus must not be empty");
    for rule_dir in rule_dirs {
        let rule = rule_dir
            .file_name()
            .and_then(|n| n.to_str())
            .expect("rule dir name is utf-8")
            .to_string();
        assert!(
            lint::rule_by_id(&rule).is_some(),
            "fixture dir `{rule}` does not name a rule"
        );
        rules_seen += 1;
        let mut files: Vec<_> = std::fs::read_dir(&rule_dir)
            .expect("rule dir readable")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        let mut pos = 0usize;
        let mut neg = 0usize;
        for file in files {
            let name = file
                .file_name()
                .and_then(|n| n.to_str())
                .expect("fixture name is utf-8")
                .to_string();
            let src = std::fs::read_to_string(&file).expect("fixture readable");
            let rel = format!("crates/world/src/{name}");
            let (cfg, meta) = scoped(&rule, &rel);
            let report = lint_source(&meta, &src, &cfg);
            let hits: Vec<_> = report
                .findings
                .iter()
                .filter(|f| f.rule == rule)
                .collect();
            if name.starts_with("pos_") {
                assert!(
                    !hits.is_empty(),
                    "{rule}/{name}: positive fixture produced no `{rule}` finding\nall findings: {:#?}",
                    report.findings
                );
                pos += 1;
            } else if name.starts_with("neg_") {
                assert!(
                    hits.is_empty(),
                    "{rule}/{name}: negative fixture produced findings: {hits:#?}"
                );
                neg += 1;
            } else {
                panic!("{rule}/{name}: fixture must be pos_*.rs or neg_*.rs");
            }
            cases += 1;
        }
        assert!(pos >= 1, "rule `{rule}` has no positive fixture");
        assert!(neg >= 1, "rule `{rule}` has no negative fixture");
    }
    assert_eq!(
        rules_seen,
        lint::ALL_RULES.len(),
        "every rule needs a fixture directory"
    );
    assert!(cases >= 2 * lint::ALL_RULES.len());
}

/// Acceptance pin: the reconstructed historical `pick_distinct` bug —
/// a HashSet draw returned in iteration order (ISSUE 4) — must be
/// caught, and the committed fix shape must pass.
#[test]
fn historical_pick_distinct_bug_is_caught() {
    let root = lint::workspace_root().join("crates/lint/fixtures/det-hash-iter");
    let bug = std::fs::read_to_string(root.join("pos_pick_distinct.rs")).expect("bug fixture");
    let fixed = std::fs::read_to_string(root.join("neg_sorted_collect.rs")).expect("fix fixture");
    let (cfg, meta) = scoped("det-hash-iter", "crates/world/src/lazy.rs");
    let bug_report = lint_source(&meta, &bug, &cfg);
    assert!(
        bug_report
            .findings
            .iter()
            .any(|f| f.rule == "det-hash-iter" && f.message.contains("seen")),
        "the pick_distinct HashSet-iteration pattern must be flagged: {:#?}",
        bug_report.findings
    );
    let fixed_report = lint_source(&meta, &fixed, &cfg);
    assert!(
        fixed_report
            .findings
            .iter()
            .all(|f| f.rule != "det-hash-iter"),
        "the sorted-collect fix must pass: {:#?}",
        fixed_report.findings
    );
}
