//! The suppression grammar: trailing and standalone placement, the
//! mandatory reason, unknown rule ids, and unused-suppression tracking.

use lint::{lint_source, Config, FileMeta};

fn meta() -> FileMeta {
    FileMeta {
        rel_path: "crates/world/src/snippet.rs".to_string(),
        crate_name: "world".to_string(),
        is_bin: false,
    }
}

fn run(src: &str) -> lint::Report {
    lint_source(&meta(), src, &Config::workspace())
}

#[test]
fn trailing_suppression_silences_its_own_line() {
    let report = run(
        "pub fn f(s: &str) -> u16 {\n\
         \x20   s.parse().unwrap() // lint:allow(panic-unwrap) demo: caller guarantees digits\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed, 1);
    assert!(report.unused.is_empty());
}

#[test]
fn standalone_suppression_covers_the_next_code_line() {
    let report = run(
        "pub fn f(s: &str) -> u16 {\n\
         \x20   // lint:allow(panic-unwrap) demo: caller guarantees digits\n\
         \x20   // (an unrelated comment between directive and code is fine)\n\
         \x20   s.parse().unwrap()\n\
         }\n",
    );
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let report = run(
        "pub fn f(s: &str) -> u16 {\n\
         \x20   s.parse().unwrap() // lint:allow(panic-unwrap)\n\
         }\n",
    );
    // Both the naked unwrap and the reasonless directive are reported.
    assert!(report.findings.iter().any(|f| f.rule == "panic-unwrap"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "bad-suppression" && f.message.contains("no reason")));
}

#[test]
fn suppression_of_unknown_rule_is_a_finding() {
    let report = run("// lint:allow(no-such-rule) because reasons\npub fn f() {}\n");
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "bad-suppression" && f.message.contains("no-such-rule")));
}

#[test]
fn suppression_only_matches_its_own_rule() {
    let report = run(
        "pub fn f(s: &str) -> u16 {\n\
         \x20   s.parse().unwrap() // lint:allow(det-hash-iter) wrong rule named\n\
         }\n",
    );
    assert!(report.findings.iter().any(|f| f.rule == "panic-unwrap"));
    // The mismatched directive silenced nothing.
    assert_eq!(report.unused.len(), 1);
    assert_eq!(report.unused[0].rule, "det-hash-iter");
}

#[test]
fn unused_suppressions_are_tracked() {
    let report = run(
        "// lint:allow(panic-unwrap) nothing on the next line unwraps\n\
         pub fn f() -> u16 { 7 }\n",
    );
    assert!(report.findings.is_empty());
    assert_eq!(report.unused.len(), 1);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn stacked_standalone_suppressions_cover_one_line_with_two_rules() {
    let src = "\
use std::collections::HashSet;
pub fn f(seen: HashSet<u32>) -> Vec<u32> {
    // lint:allow(det-hash-iter) demo: order is re-established downstream
    // lint:allow(panic-unwrap) demo: nonempty by construction
    seen.into_iter().map(|v| v.checked_mul(2).unwrap()).collect()
}
";
    let report = run(src);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed, 2);
    assert!(report.unused.is_empty());
}
