//! Lexer round-trip and disambiguation tests on the Rust constructs
//! that trip naive scanners.

use lint::lex::{lex, TokKind};

/// Every byte of the input is either inside exactly one token span or
/// whitespace between spans — the stream reproduces the source.
fn assert_round_trip(src: &str) {
    let tokens = lex(src).unwrap_or_else(|e| panic!("lex failed on {src:?}: {e}"));
    let mut cursor = 0usize;
    for t in &tokens {
        assert!(t.start >= cursor, "overlapping token at {}", t.start);
        assert!(t.end > t.start, "empty token at {}", t.start);
        assert!(
            src[cursor..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap before token at {}: {:?}",
            t.start,
            &src[cursor..t.start]
        );
        cursor = t.end;
    }
    assert!(
        src[cursor..].chars().all(char::is_whitespace),
        "non-whitespace tail after last token"
    );
    // Reassembling spans + gaps is the identity.
    let mut rebuilt = String::new();
    let mut at = 0usize;
    for t in &tokens {
        rebuilt.push_str(&src[at..t.start]);
        rebuilt.push_str(t.text(src));
        at = t.end;
    }
    rebuilt.push_str(&src[at..]);
    assert_eq!(rebuilt, src);
}

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .expect("fixture must lex")
        .into_iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

#[test]
fn raw_strings_with_fences() {
    let src = r####"let s = r#"raw "quoted" body"#; let t = r##"deeper "# fence"##;"####;
    assert_round_trip(src);
    let strs: Vec<_> = kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 2);
    assert!(strs[0].1.starts_with("r#\""));
    assert!(strs[1].1.ends_with("\"##"));
}

#[test]
fn byte_and_c_strings() {
    let src = r##"let a = b"bytes\x00"; let b2 = br#"raw bytes"#; let c = c"cstr";"##;
    assert_round_trip(src);
    let n = kinds(src).iter().filter(|(k, _)| *k == TokKind::Str).count();
    assert_eq!(n, 3);
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "before /* outer /* nested /* deep */ */ tail */ after";
    assert_round_trip(src);
    let toks = kinds(src);
    assert_eq!(
        toks,
        vec![
            (TokKind::Ident, "before".to_string()),
            (
                TokKind::BlockComment,
                "/* outer /* nested /* deep */ */ tail */".to_string()
            ),
            (TokKind::Ident, "after".to_string()),
        ]
    );
}

#[test]
fn unterminated_block_comment_is_an_error() {
    assert!(lex("ok /* never closes /* inner */").is_err());
    assert!(lex("let s = \"no close").is_err());
    assert!(lex("let s = r#\"no close\"").is_err());
}

#[test]
fn lifetimes_vs_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let n = '\\n'; let q = '\\''; let u = '\\u{1F600}'; let g = 'λ'; x }";
    assert_round_trip(src);
    let toks = kinds(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    let chars: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Char)
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(chars, vec!["'x'", "'\\n'", "'\\''", "'\\u{1F600}'", "'λ'"]);
}

#[test]
fn raw_identifiers() {
    let src = "let r#type = r#match + regular;";
    assert_round_trip(src);
    let idents: Vec<_> = kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == TokKind::Ident)
        .map(|(_, t)| t)
        .collect();
    assert_eq!(idents, vec!["let", "r#type", "r#match", "regular"]);
}

#[test]
fn numbers_keep_range_and_method_dots() {
    let src = "let a = 0..10; let b = 1.max(2); let c = 2.5e-3; let d = 0x3FFF_u32; let e = 1_000.5f64;";
    assert_round_trip(src);
    let nums: Vec<_> = kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == TokKind::Num)
        .map(|(_, t)| t)
        .collect();
    assert_eq!(nums, vec!["0", "10", "1", "2", "2.5e-3", "0x3FFF_u32", "1_000.5f64"]);
}

#[test]
fn line_comments_and_doc_comments() {
    let src = "/// doc 'comment' with \"stuff\"\n//! inner\nfn x() {} // trailing";
    assert_round_trip(src);
    let n = kinds(src)
        .iter()
        .filter(|(k, _)| *k == TokKind::LineComment)
        .count();
    assert_eq!(n, 3);
}

#[test]
fn a_real_workspace_file_round_trips() {
    // The lexer must hold on real house code, not just fixtures.
    let root = lint::workspace_root();
    for rel in [
        "crates/dns/src/name.rs",
        "crates/spf/src/expand.rs",
        "crates/prober/src/probe.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).expect("workspace file readable");
        assert_round_trip(&src);
    }
}
