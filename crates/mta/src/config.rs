//! MTA behaviour configuration.
//!
//! Each knob corresponds to a row the paper's Table 3 / Table 4 / Table 7
//! measurement distinguishes: whether connections are accepted, where in
//! the SMTP transaction things fail, at which stage SPF runs, and which
//! SPF implementation(s) the host links against.

use spfail_libspf2::MacroBehavior;

/// What happens when the prober opens a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectPolicy {
    /// Listener present, service normal.
    Accept,
    /// No listener / firewalled: "Connection Refused" in Table 3.
    Refuse,
    /// Accepts TCP but greets with a 4xx/5xx and closes ("SMTP Failure").
    RejectBanner(u16),
}

/// Mid-transaction failure quirks ("SMTP Failure" rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtpQuirk {
    /// No quirk; the transaction runs to plan.
    None,
    /// Rejects every `MAIL FROM` with the given code.
    RejectMailFrom(u16),
    /// Rejects every recipient with the given code (the username ladder
    /// runs out).
    RejectAllRcpt(u16),
    /// Accepts the envelope but rejects `DATA` with the given code.
    RejectData(u16),
    /// Accepts `DATA` but rejects the transmitted message with the code
    /// (the "BlankMsg SMTP Failure" row).
    RejectMessage(u16),
}

/// When SPF validation runs relative to the SMTP transaction.
///
/// This is what makes the two-probe design necessary: a NoMsg probe never
/// reaches end-of-data, so hosts with [`SpfStage::OnData`] reveal nothing
/// until the BlankMsg probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpfStage {
    /// The host never validates SPF ("SPF Not Measured" in both tests).
    Never,
    /// Validates as soon as `MAIL FROM` arrives (measurable by NoMsg).
    OnMailFrom,
    /// Validates at end-of-data (measurable only by BlankMsg).
    OnData,
}

/// Full behavioural configuration of a simulated MTA.
#[derive(Debug, Clone)]
pub struct MtaConfig {
    /// The hostname used in banners.
    pub hostname: String,
    /// Connection acceptance.
    pub connect: ConnectPolicy,
    /// Mid-transaction failure behaviour.
    pub quirk: SmtpQuirk,
    /// When SPF runs.
    pub spf_stage: SpfStage,
    /// The SPF implementation(s) this host runs. More than one entry
    /// models an MTA chained with a spam filter (SpamAssassin/Rspamd
    /// style), each validating independently — the paper's ≥2-distinct-
    /// expansion hosts (§7.9).
    pub spf_impls: Vec<MacroBehavior>,
    /// Whether unknown (sender, recipient) pairs are greylisted with a 450
    /// on first contact.
    pub greylist: bool,
    /// Whether an SPF `fail` verdict rejects the mail (typical); when
    /// `false` the host only annotates and accepts.
    pub reject_on_spf_fail: bool,
    /// After this many probe connections the host starts rejecting the
    /// prober (the blacklisting §7.6 hypothesises); `None` = never.
    pub blacklist_after: Option<u32>,
    /// Whether the host violates RFC 5321 §4.5.1 and rejects mail to
    /// `postmaster@` (a major cause of bounced notifications, §7.7).
    pub reject_postmaster: bool,
}

impl MtaConfig {
    /// A plain, RFC-compliant MTA validating at `MAIL FROM`.
    pub fn compliant(hostname: &str) -> MtaConfig {
        MtaConfig {
            hostname: hostname.to_string(),
            connect: ConnectPolicy::Accept,
            quirk: SmtpQuirk::None,
            spf_stage: SpfStage::OnMailFrom,
            spf_impls: vec![MacroBehavior::Compliant],
            greylist: false,
            reject_on_spf_fail: true,
            blacklist_after: None,
            reject_postmaster: false,
        }
    }

    /// A vulnerable-libSPF2 MTA validating at `MAIL FROM`.
    pub fn vulnerable(hostname: &str) -> MtaConfig {
        MtaConfig {
            spf_impls: vec![MacroBehavior::VulnerableLibSpf2],
            ..MtaConfig::compliant(hostname)
        }
    }

    /// Replace every vulnerable implementation with a patched/compliant
    /// one — what happens when the host's operator updates the package.
    pub fn apply_patch(&mut self) {
        for spf_impl in &mut self.spf_impls {
            if spf_impl.is_vulnerable() {
                *spf_impl = MacroBehavior::PatchedLibSpf2;
            }
        }
    }

    /// Whether any configured implementation is the vulnerable one.
    pub fn is_vulnerable(&self) -> bool {
        self.spf_impls.iter().any(|b| b.is_vulnerable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = MtaConfig::compliant("mx.test");
        assert!(!c.is_vulnerable());
        assert_eq!(c.spf_stage, SpfStage::OnMailFrom);
        let v = MtaConfig::vulnerable("mx.test");
        assert!(v.is_vulnerable());
    }

    #[test]
    fn patching_replaces_vulnerable_impls_only() {
        let mut config = MtaConfig::vulnerable("mx.test");
        config.spf_impls.push(MacroBehavior::NoExpansion);
        config.apply_patch();
        assert!(!config.is_vulnerable());
        assert_eq!(
            config.spf_impls,
            vec![MacroBehavior::PatchedLibSpf2, MacroBehavior::NoExpansion],
            "non-vulnerable quirks are untouched by a libSPF2 update"
        );
    }
}
