//! The simulated MTA proper.

use std::collections::HashSet;
use std::net::IpAddr;

use spfail_dns::resolver::{LookupError, LookupOutcome};
use spfail_dns::{Directory, Name, RecordType, Resolver};
use spfail_netsim::{Link, SimClock, SimRng, SimTime};
use spfail_smtp::address::EmailAddress;
use spfail_smtp::reply::Reply;
use spfail_smtp::session::{ServerPolicy, ServerSession};
use spfail_spf::eval::{Evaluator, SpfDns};
use spfail_spf::result::SpfResult;

use crate::config::{ConnectPolicy, MtaConfig, SmtpQuirk, SpfStage};

/// One SPF validation the MTA performed, for post-hoc inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRecord {
    /// Which implementation ran (`"rfc7208"`, `"libspf2-1.2.10"`, …).
    pub implementation: &'static str,
    /// The verdict.
    pub result: SpfResult,
    /// When it ran.
    pub at: SimTime,
}

/// Adapter giving the SPF evaluator access to the MTA's resolver.
struct ResolverDns<'a> {
    resolver: &'a mut Resolver,
    rng: &'a mut SimRng,
}

impl SpfDns for ResolverDns<'_> {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        self.resolver.resolve(self.rng, name, rtype)
    }
}

/// A simulated mail transfer agent.
pub struct Mta {
    config: MtaConfig,
    resolver: Resolver,
    rng: SimRng,
    clock: SimClock,
    /// Sender domains already seen once (greylisting state).
    greylist_seen: HashSet<String>,
    /// Recipient local-parts this host rejects (first N of any ladder).
    rcpt_reject_first_n: u8,
    rejected_rcpts_this_envelope: u8,
    probe_connections: u32,
    peer: IpAddr,
    pending_sender: Option<EmailAddress>,
    validations: Vec<ValidationRecord>,
}

/// What `connect()` decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectDecision {
    /// TCP refused; nothing more happens.
    Refused,
    /// TCP accepted but the service rejects with this banner and closes.
    RejectedBanner(Reply),
    /// Proceed to the SMTP session.
    Proceed,
}

impl Mta {
    /// Build an MTA at `ip` resolving through `directory`.
    pub fn new(
        config: MtaConfig,
        ip: IpAddr,
        directory: Directory,
        clock: SimClock,
        rng: SimRng,
    ) -> Mta {
        let link = Link::ideal(clock.clone());
        Mta::with_dns_link(config, ip, directory, link, clock, rng)
    }

    /// Build an MTA whose resolver queries over an explicit [`Link`] —
    /// the fault-injection hook: the link's fault plan decides whether
    /// the MTA's own DNS lookups time out, SERVFAIL, or truncate, and
    /// its metrics handle receives the resulting counters.
    pub fn with_dns_link(
        config: MtaConfig,
        ip: IpAddr,
        directory: Directory,
        dns_link: Link,
        clock: SimClock,
        rng: SimRng,
    ) -> Mta {
        Mta {
            resolver: Resolver::new(directory, dns_link, ip),
            config,
            rng,
            clock,
            greylist_seen: HashSet::new(),
            rcpt_reject_first_n: 0,
            rejected_rcpts_this_envelope: 0,
            probe_connections: 0,
            peer: ip,
            pending_sender: None,
            validations: Vec::new(),
        }
    }

    /// Attach a tracing handle to the MTA's resolver so the DNS lookups
    /// its SPF validation performs appear as `dns_resolve` spans in the
    /// probing client's trace.
    pub fn set_dns_tracer(&mut self, tracer: spfail_trace::Tracer) {
        self.resolver.set_tracer(tracer);
    }

    /// The configuration (mutable, so campaigns can patch the host).
    pub fn config_mut(&mut self) -> &mut MtaConfig {
        &mut self.config
    }

    /// The configuration.
    pub fn config(&self) -> &MtaConfig {
        &self.config
    }

    /// Reject the first `n` recipient usernames of every envelope, forcing
    /// clients down their username ladder.
    pub fn set_rcpt_reject_first_n(&mut self, n: u8) {
        self.rcpt_reject_first_n = n;
    }

    /// Apply the libSPF2 patch to this host.
    pub fn patch(&mut self) {
        self.config.apply_patch();
    }

    /// All SPF validations performed so far.
    pub fn validations(&self) -> &[ValidationRecord] {
        &self.validations
    }

    /// Number of connections this host has seen.
    pub fn connections_seen(&self) -> u32 {
        self.probe_connections
    }

    /// Decide a new inbound connection from `peer`.
    pub fn connect(&mut self, peer: IpAddr) -> ConnectDecision {
        self.probe_connections += 1;
        self.peer = peer;
        self.pending_sender = None;
        self.rejected_rcpts_this_envelope = 0;
        if let Some(limit) = self.config.blacklist_after {
            if self.probe_connections > limit {
                // §7.6: blacklisting hosts answered TCP but aborted the
                // SMTP conversation with a 5XX/421.
                let reply = if self.rng.chance(0.5) {
                    Reply::service_unavailable()
                } else {
                    Reply::new(554, "Transaction failed: sender blocked")
                };
                return ConnectDecision::RejectedBanner(reply);
            }
        }
        match self.config.connect {
            ConnectPolicy::Refuse => ConnectDecision::Refused,
            ConnectPolicy::RejectBanner(code) => {
                ConnectDecision::RejectedBanner(Reply::new(code, "Service rejecting connections"))
            }
            ConnectPolicy::Accept => ConnectDecision::Proceed,
        }
    }

    /// Open the SMTP session after a `Proceed` decision.
    pub fn open_session(&mut self) -> (ServerSession<&mut Mta>, Reply) {
        let hostname = self.config.hostname.clone();
        ServerSession::open(&hostname, self)
    }

    /// Run SPF validation for `sender` with every configured
    /// implementation; returns the reply that should reject the mail, if
    /// any.
    fn run_spf(&mut self, sender: &EmailAddress) -> Option<Reply> {
        let impls = self.config.spf_impls.clone();
        let mut reject: Option<Reply> = None;
        for behavior in impls {
            let mut expander = behavior.expander();
            let result = {
                let mut dns = ResolverDns {
                    resolver: &mut self.resolver,
                    rng: &mut self.rng,
                };
                let mut eval = Evaluator::new(&mut dns, &mut expander);
                eval.check_host(self.peer, sender.local(), sender.domain())
            };
            self.validations.push(ValidationRecord {
                implementation: expander.describe(),
                result,
                at: self.clock.now(),
            });
            if reject.is_none() {
                reject = match result {
                    SpfResult::Fail if self.config.reject_on_spf_fail => {
                        Some(Reply::spf_rejected(sender.domain()))
                    }
                    SpfResult::TempError => {
                        Some(Reply::new(451, "Temporary SPF validation failure"))
                    }
                    _ => None,
                };
            }
        }
        reject
    }
}

impl ServerPolicy for &mut Mta {
    fn on_mail_from(&mut self, sender: Option<&EmailAddress>) -> Option<Reply> {
        if let SmtpQuirk::RejectMailFrom(code) = self.config.quirk {
            return Some(Reply::new(code, "Sender rejected by policy"));
        }
        self.pending_sender = sender.cloned();
        self.rejected_rcpts_this_envelope = 0;
        if self.config.spf_stage == SpfStage::OnMailFrom {
            if let Some(sender) = sender.cloned() {
                if let Some(reject) = self.run_spf(&sender) {
                    return Some(reject);
                }
            }
        }
        None
    }

    fn on_rcpt_to(&mut self, recipient: &EmailAddress) -> Option<Reply> {
        if let SmtpQuirk::RejectAllRcpt(code) = self.config.quirk {
            return Some(Reply::new(code, "No such recipient"));
        }
        let is_postmaster = recipient.local().eq_ignore_ascii_case("postmaster");
        // RFC 5321 §4.5.1 says postmaster MUST be accepted; compliant
        // hosts do, and the unknown-user rejections only apply to
        // ordinary mailboxes. Hosts configured to violate the MUST are
        // the paper's main notification-bounce source.
        if is_postmaster && self.config.reject_postmaster {
            return Some(Reply::mailbox_unavailable());
        }
        if !is_postmaster && self.rejected_rcpts_this_envelope < self.rcpt_reject_first_n {
            self.rejected_rcpts_this_envelope += 1;
            return Some(Reply::mailbox_unavailable());
        }
        if self.config.greylist {
            let key = self
                .pending_sender
                .as_ref()
                .map(|s| format!("{}/{}", s.domain_lower(), recipient.local()))
                .unwrap_or_else(|| format!("<>/{}", recipient.local()));
            if self.greylist_seen.insert(key) {
                return Some(Reply::greylisted());
            }
        }
        None
    }

    fn on_data_begin(&mut self) -> Option<Reply> {
        if let SmtpQuirk::RejectData(code) = self.config.quirk {
            return Some(Reply::new(code, "DATA not accepted"));
        }
        None
    }

    fn on_message(&mut self, _body: &str) -> Option<Reply> {
        if let SmtpQuirk::RejectMessage(code) = self.config.quirk {
            return Some(Reply::new(code, "Message rejected by content policy"));
        }
        if self.config.spf_stage == SpfStage::OnData {
            if let Some(sender) = self.pending_sender.clone() {
                if let Some(reject) = self.run_spf(&sender) {
                    return Some(reject);
                }
            }
        }
        // Blank probe messages are accepted here but would be discarded by
        // the spam filter; the probe design counts on rejection *or*
        // discard, either way no inbox delivery.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_dns::{QueryLog, SpfTestAuthority};
    use spfail_smtp::command::Command;
    use std::sync::Arc;

    fn setup() -> (Directory, QueryLog, SimClock) {
        let directory = Directory::new();
        let log = QueryLog::new();
        directory.register(Arc::new(SpfTestAuthority::new(
            SpfTestAuthority::default_origin(),
            log.clone(),
        )));
        (directory, log, SimClock::new())
    }

    fn mta(config: MtaConfig) -> (Mta, QueryLog) {
        let (directory, log, clock) = setup();
        let m = Mta::new(
            config,
            "198.51.100.9".parse().unwrap(),
            directory,
            clock,
            SimRng::new(7),
        );
        (m, log)
    }

    fn probe_addr() -> EmailAddress {
        EmailAddress::parse("mmj7yzdm0tbk@k7q2.s01.spf-test.dns-lab.org").unwrap()
    }

    fn drive_through_mail_from(m: &mut Mta) -> Reply {
        assert_eq!(m.connect("203.0.113.9".parse().unwrap()), ConnectDecision::Proceed);
        let (mut session, banner) = m.open_session();
        assert_eq!(banner.code, 220);
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()))
    }

    #[test]
    fn vulnerable_mta_emits_the_fingerprint_query() {
        let (mut m, log) = mta(MtaConfig::vulnerable("mx.victim.test"));
        let reply = drive_through_mail_from(&mut m);
        // The probe record always ends in -all, so validation fails and
        // the mail is rejected — by design (§6.2).
        assert_eq!(reply.code, 550);
        let queried: Vec<String> = log.snapshot().iter().map(|e| e.qname.to_ascii()).collect();
        assert!(
            queried.contains(
                &"org.org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org".to_string()
            ),
            "vulnerable duplication fingerprint, got {queried:?}"
        );
        assert_eq!(m.validations().len(), 1);
        assert_eq!(m.validations()[0].implementation, "libspf2-1.2.10");
        assert_eq!(m.validations()[0].result, SpfResult::Fail);
    }

    #[test]
    fn compliant_mta_emits_the_rfc_query() {
        let (mut m, log) = mta(MtaConfig::compliant("mx.good.test"));
        drive_through_mail_from(&mut m);
        let queried: Vec<String> = log.snapshot().iter().map(|e| e.qname.to_ascii()).collect();
        assert!(
            queried.contains(&"k7q2.k7q2.s01.spf-test.dns-lab.org".to_string()),
            "compliant %{{d1r}} expansion, got {queried:?}"
        );
    }

    #[test]
    fn patching_switches_the_fingerprint() {
        let (mut m, log) = mta(MtaConfig::vulnerable("mx.victim.test"));
        drive_through_mail_from(&mut m);
        assert!(log
            .snapshot()
            .iter()
            .any(|e| e.qname.first_label() == Some("org")));
        log.clear();
        m.patch();
        assert!(!m.config().is_vulnerable());
        drive_through_mail_from(&mut m);
        assert!(
            !log.snapshot()
                .iter()
                .any(|e| e.qname.first_label() == Some("org")),
            "after the patch the duplicated expansion must be gone"
        );
    }

    #[test]
    fn ondata_stage_validates_only_at_message() {
        let mut config = MtaConfig::vulnerable("mx.late.test");
        config.spf_stage = SpfStage::OnData;
        let (mut m, log) = mta(config);
        let reply = drive_through_mail_from(&mut m);
        assert!(reply.is_positive());
        assert!(log.is_empty(), "NoMsg-style probes see nothing from OnData hosts");

        // Run a full BlankMsg-style transaction.
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@mx.late.test").unwrap(),
        ));
        session.handle(&Command::Data);
        let final_reply = session.handle_message("");
        assert_eq!(final_reply.code, 550, "SPF fail at end-of-data");
        assert!(!log.is_empty());
    }

    #[test]
    fn never_stage_never_queries() {
        let mut config = MtaConfig::compliant("mx.nospf.test");
        config.spf_stage = SpfStage::Never;
        let (mut m, log) = mta(config);
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@mx.nospf.test").unwrap(),
        ));
        session.handle(&Command::Data);
        session.handle_message("");
        assert!(log.is_empty());
    }

    #[test]
    fn multiple_impls_emit_multiple_patterns() {
        let mut config = MtaConfig::vulnerable("mx.multi.test");
        config.spf_impls = vec![
            spfail_libspf2::MacroBehavior::VulnerableLibSpf2,
            spfail_libspf2::MacroBehavior::Compliant,
        ];
        config.reject_on_spf_fail = false;
        let (mut m, log) = mta(config);
        drive_through_mail_from(&mut m);
        let first_labels: Vec<Option<&str>> = log
            .snapshot()
            .iter()
            .filter(|e| e.qtype == RecordType::A)
            .map(|e| e.qname.first_label().map(|s| s.to_string()))
            .collect::<Vec<_>>()
            .iter()
            .map(|o| o.as_deref().map(|s| if s == "org" { "org" } else { "other" }))
            .collect();
        assert!(first_labels.contains(&Some("org")), "vulnerable pattern present");
        assert!(first_labels.contains(&Some("other")), "compliant pattern present");
        assert_eq!(m.validations().len(), 2);
    }

    #[test]
    fn greylisting_rejects_first_attempt_only() {
        let mut config = MtaConfig::compliant("mx.grey.test");
        config.greylist = true;
        config.spf_stage = SpfStage::Never;
        let (mut m, _log) = mta(config);
        let rcpt = EmailAddress::parse("postmaster@mx.grey.test").unwrap();

        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        assert_eq!(session.handle(&Command::RcptTo(rcpt.clone())).code, 450);

        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        assert!(session.handle(&Command::RcptTo(rcpt)).is_positive());
    }

    #[test]
    fn blacklisting_kicks_in_after_threshold() {
        let mut config = MtaConfig::vulnerable("mx.bl.test");
        config.blacklist_after = Some(2);
        let (mut m, _log) = mta(config);
        let peer: IpAddr = "203.0.113.9".parse().unwrap();
        assert_eq!(m.connect(peer), ConnectDecision::Proceed);
        assert_eq!(m.connect(peer), ConnectDecision::Proceed);
        match m.connect(peer) {
            ConnectDecision::RejectedBanner(reply) => {
                assert!(reply.code == 421 || reply.code == 554);
            }
            other => panic!("expected blacklist banner, got {other:?}"),
        }
    }

    #[test]
    fn connect_policies() {
        let mut config = MtaConfig::compliant("mx.refuse.test");
        config.connect = ConnectPolicy::Refuse;
        let (mut m, _) = mta(config);
        assert_eq!(
            m.connect("203.0.113.9".parse().unwrap()),
            ConnectDecision::Refused
        );

        let mut config = MtaConfig::compliant("mx.banner.test");
        config.connect = ConnectPolicy::RejectBanner(554);
        let (mut m, _) = mta(config);
        match m.connect("203.0.113.9".parse().unwrap()) {
            ConnectDecision::RejectedBanner(reply) => assert_eq!(reply.code, 554),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rcpt_ladder_rejection() {
        let mut config = MtaConfig::compliant("mx.ladder.test");
        config.spf_stage = SpfStage::Never;
        let (mut m, _) = mta(config);
        m.set_rcpt_reject_first_n(2);
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("p.test".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        let r1 = session.handle(&Command::RcptTo(
            EmailAddress::parse("mmj7yzdm0tbk@mx.ladder.test").unwrap(),
        ));
        assert_eq!(r1.code, 550);
        let r2 = session.handle(&Command::RcptTo(
            EmailAddress::parse("noreply@mx.ladder.test").unwrap(),
        ));
        assert_eq!(r2.code, 550);
        let r3 = session.handle(&Command::RcptTo(
            EmailAddress::parse("donotreply@mx.ladder.test").unwrap(),
        ));
        assert!(r3.is_positive());
    }

    #[test]
    fn quirks_fire_at_their_stage() {
        type QuirkCheck = fn(&mut Mta) -> u16;
        let cases: [(SmtpQuirk, QuirkCheck); 3] = [
            (SmtpQuirk::RejectMailFrom(553), |m: &mut Mta| {
                drive_through_mail_from(m).code
            }),
            (SmtpQuirk::RejectAllRcpt(550), |m: &mut Mta| {
                m.connect("203.0.113.9".parse().unwrap());
                let (mut s, _) = m.open_session();
                s.handle(&Command::Ehlo("p.test".into()));
                s.handle(&Command::MailFrom(probe_addr()));
                s.handle(&Command::RcptTo(
                    EmailAddress::parse("postmaster@x.test").unwrap(),
                ))
                .code
            }),
            (SmtpQuirk::RejectData(554), |m: &mut Mta| {
                m.connect("203.0.113.9".parse().unwrap());
                let (mut s, _) = m.open_session();
                s.handle(&Command::Ehlo("p.test".into()));
                s.handle(&Command::MailFrom(probe_addr()));
                s.handle(&Command::RcptTo(
                    EmailAddress::parse("postmaster@x.test").unwrap(),
                ));
                s.handle(&Command::Data).code
            }),
        ];
        for (quirk, check) in cases {
            let mut config = MtaConfig::compliant("mx.quirk.test");
            config.spf_stage = SpfStage::Never;
            config.quirk = quirk;
            let (mut m, _) = mta(config);
            let code = check(&mut m);
            assert!((400..600).contains(&code), "{quirk:?} gave {code}");
        }
    }
}
