//! The simulated MTA proper.

use std::collections::HashSet;
use std::net::IpAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use spfail_dns::resolver::{LookupError, LookupOutcome, Transcript};
use spfail_dns::{Directory, Name, RData, Record, RecordType, Resolver};
use spfail_netsim::{LatencyModel, Link, SimClock, SimRng, SimTime};
use spfail_smtp::address::EmailAddress;
use spfail_smtp::reply::Reply;
use spfail_smtp::session::{ServerPolicy, ServerSession};
use spfail_spf::compile::{
    splice_id, templatize, CompiledEvaluator, PolicyCache, ScriptEntry, ScriptKey, ScriptStep,
};
use spfail_spf::eval::{Evaluator, SpfDns};
use spfail_spf::result::SpfResult;

use crate::config::{ConnectPolicy, MtaConfig, SmtpQuirk, SpfStage};

/// A shard-shared handle to the compiled-policy evaluation cache.
///
/// One handle is created per shard worker and threaded into every MTA the
/// shard builds; the cache itself is purely derived state and is never
/// serialized into campaign checkpoints.
pub type PolicyCacheHandle = Arc<Mutex<PolicyCache>>;

/// A fresh, empty [`PolicyCacheHandle`] for one shard worker.
pub fn new_policy_cache() -> PolicyCacheHandle {
    Arc::new(Mutex::new(PolicyCache::new()))
}

/// One SPF validation the MTA performed, for post-hoc inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRecord {
    /// Which implementation ran (`"rfc7208"`, `"libspf2-1.2.10"`, …).
    pub implementation: &'static str,
    /// The verdict.
    pub result: SpfResult,
    /// When it ran.
    pub at: SimTime,
}

/// Adapter giving the SPF evaluator access to the MTA's resolver.
struct ResolverDns<'a> {
    resolver: &'a mut Resolver,
    rng: &'a mut SimRng,
}

impl SpfDns for ResolverDns<'_> {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        self.resolver.resolve(self.rng, name, rtype)
    }
}

/// A simulated mail transfer agent.
pub struct Mta {
    config: MtaConfig,
    resolver: Resolver,
    rng: SimRng,
    clock: SimClock,
    /// Sender domains already seen once (greylisting state).
    greylist_seen: HashSet<String>,
    /// Recipient local-parts this host rejects (first N of any ladder).
    rcpt_reject_first_n: u8,
    rejected_rcpts_this_envelope: u8,
    probe_connections: u32,
    peer: IpAddr,
    pending_sender: Option<EmailAddress>,
    validations: Vec<ValidationRecord>,
    /// Shard-shared compiled-policy cache; `None` runs the original
    /// interpretive evaluation loop.
    policy_cache: Option<Arc<Mutex<PolicyCache>>>,
    /// The implementation-mix token of [`ScriptKey::impls`], joined once
    /// at construction so per-validation cache lookups borrow it.
    impls_label: String,
}

/// What `connect()` decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectDecision {
    /// TCP refused; nothing more happens.
    Refused,
    /// TCP accepted but the service rejects with this banner and closes.
    RejectedBanner(Reply),
    /// Proceed to the SMTP session.
    Proceed,
}

impl Mta {
    /// Build an MTA at `ip` resolving through `directory`.
    pub fn new(
        config: MtaConfig,
        ip: IpAddr,
        directory: Directory,
        clock: SimClock,
        rng: SimRng,
    ) -> Mta {
        let link = Link::ideal(clock.clone());
        Mta::with_dns_link(config, ip, directory, link, clock, rng)
    }

    /// Build an MTA whose resolver queries over an explicit [`Link`] —
    /// the fault-injection hook: the link's fault plan decides whether
    /// the MTA's own DNS lookups time out, SERVFAIL, or truncate, and
    /// its metrics handle receives the resulting counters.
    pub fn with_dns_link(
        config: MtaConfig,
        ip: IpAddr,
        directory: Directory,
        dns_link: Link,
        clock: SimClock,
        rng: SimRng,
    ) -> Mta {
        let impls_label = config
            .spf_impls
            .iter()
            .map(|b| b.label())
            .collect::<Vec<_>>()
            .join(",");
        Mta {
            resolver: Resolver::new(directory, dns_link, ip),
            config,
            rng,
            clock,
            greylist_seen: HashSet::new(),
            rcpt_reject_first_n: 0,
            rejected_rcpts_this_envelope: 0,
            probe_connections: 0,
            peer: ip,
            pending_sender: None,
            validations: Vec::new(),
            policy_cache: None,
            impls_label,
        }
    }

    /// Attach the shard's shared [`PolicyCache`]. SPF validation then runs
    /// through the compiled evaluator and, where provably transparent,
    /// replays whole memoized evaluations instead of re-doing their work.
    pub fn set_policy_cache(&mut self, cache: Arc<Mutex<PolicyCache>>) {
        self.policy_cache = Some(cache);
    }

    /// Attach a tracing handle to the MTA's resolver so the DNS lookups
    /// its SPF validation performs appear as `dns_resolve` spans in the
    /// probing client's trace.
    pub fn set_dns_tracer(&mut self, tracer: spfail_trace::Tracer) {
        self.resolver.set_tracer(tracer);
    }

    /// The configuration (mutable, so campaigns can patch the host).
    pub fn config_mut(&mut self) -> &mut MtaConfig {
        &mut self.config
    }

    /// The configuration.
    pub fn config(&self) -> &MtaConfig {
        &self.config
    }

    /// Reject the first `n` recipient usernames of every envelope, forcing
    /// clients down their username ladder.
    pub fn set_rcpt_reject_first_n(&mut self, n: u8) {
        self.rcpt_reject_first_n = n;
    }

    /// Apply the libSPF2 patch to this host.
    pub fn patch(&mut self) {
        self.config.apply_patch();
    }

    /// All SPF validations performed so far.
    pub fn validations(&self) -> &[ValidationRecord] {
        &self.validations
    }

    /// Number of connections this host has seen.
    pub fn connections_seen(&self) -> u32 {
        self.probe_connections
    }

    /// Decide a new inbound connection from `peer`.
    pub fn connect(&mut self, peer: IpAddr) -> ConnectDecision {
        self.probe_connections += 1;
        self.peer = peer;
        self.pending_sender = None;
        self.rejected_rcpts_this_envelope = 0;
        if let Some(limit) = self.config.blacklist_after {
            if self.probe_connections > limit {
                // §7.6: blacklisting hosts answered TCP but aborted the
                // SMTP conversation with a 5XX/421.
                let reply = if self.rng.chance(0.5) {
                    Reply::service_unavailable()
                } else {
                    Reply::new(554, "Transaction failed: sender blocked")
                };
                return ConnectDecision::RejectedBanner(reply);
            }
        }
        match self.config.connect {
            ConnectPolicy::Refuse => ConnectDecision::Refused,
            ConnectPolicy::RejectBanner(code) => {
                ConnectDecision::RejectedBanner(Reply::new(code, "Service rejecting connections"))
            }
            ConnectPolicy::Accept => ConnectDecision::Proceed,
        }
    }

    /// Open the SMTP session after a `Proceed` decision.
    pub fn open_session(&mut self) -> (ServerSession<&mut Mta>, Reply) {
        let hostname = self.config.hostname.clone();
        ServerSession::open(&hostname, self)
    }

    /// Run SPF validation for `sender` with every configured
    /// implementation; returns the reply that should reject the mail, if
    /// any.
    fn run_spf(&mut self, sender: &EmailAddress) -> Option<Reply> {
        match self.policy_cache.clone() {
            None => self.run_spf_interpretive(sender),
            Some(cache) => self.run_spf_cached(sender, &cache),
        }
    }

    /// The original interpretive evaluation loop — the cache-off baseline.
    fn run_spf_interpretive(&mut self, sender: &EmailAddress) -> Option<Reply> {
        let impls = self.config.spf_impls.clone();
        let mut reject: Option<Reply> = None;
        for behavior in impls {
            let mut expander = behavior.expander();
            let result = {
                let mut dns = ResolverDns {
                    resolver: &mut self.resolver,
                    rng: &mut self.rng,
                };
                let mut eval = Evaluator::new(&mut dns, &mut expander);
                eval.check_host(self.peer, sender.local(), sender.domain())
            };
            reject = self.record_validation(sender, reject, expander.describe(), result);
        }
        reject
    }

    /// Record one implementation's verdict and fold it into the pending
    /// reject decision, exactly as the interpretive loop always has.
    fn record_validation(
        &mut self,
        sender: &EmailAddress,
        reject: Option<Reply>,
        implementation: &'static str,
        result: SpfResult,
    ) -> Option<Reply> {
        self.validations.push(ValidationRecord {
            implementation,
            result,
            at: self.clock.now(),
        });
        if reject.is_some() {
            return reject;
        }
        match result {
            SpfResult::Fail if self.config.reject_on_spf_fail => {
                Some(Reply::spf_rejected(sender.domain()))
            }
            SpfResult::TempError => Some(Reply::new(451, "Temporary SPF validation failure")),
            _ => None,
        }
    }

    /// Cache-backed validation: replay a memoized evaluation when one
    /// exists for this probe shape, otherwise evaluate live through the
    /// compiled evaluator and — when the exchange was provably clean —
    /// record a validated replay script for the next same-shape probe.
    fn run_spf_cached(
        &mut self,
        sender: &EmailAddress,
        cache: &Arc<Mutex<PolicyCache>>,
    ) -> Option<Reply> {
        let shape = self.script_shape(sender);
        let record_candidate = match shape {
            Some((id, domain_rest)) => {
                let entry = cache.lock().script_for(
                    id.len(),
                    domain_rest,
                    sender.local(),
                    self.peer,
                    &self.impls_label,
                );
                if let Some(entry) = entry {
                    return self.replay_script(sender, id, &entry);
                }
                true
            }
            None => {
                // A gate closed (warm resolver cache, latency, faults, or
                // a non-probe sender shape): the evaluation is live and
                // unmemoizable, but still runs compiled.
                cache.lock().note_miss();
                false
            }
        };

        if record_candidate {
            self.resolver.begin_transcript();
        }
        let impls = self.config.spf_impls.clone();
        let mut results: Vec<(&'static str, SpfResult)> = Vec::with_capacity(impls.len());
        let mut reject: Option<Reply> = None;
        for behavior in impls {
            let mut expander = behavior.expander();
            let result = {
                let mut guard = cache.lock();
                let mut dns = ResolverDns {
                    resolver: &mut self.resolver,
                    rng: &mut self.rng,
                };
                let mut eval = CompiledEvaluator::new(&mut dns, &mut expander, &mut guard);
                eval.check_host(self.peer, sender.local(), sender.domain())
            };
            results.push((expander.describe(), result));
            reject = self.record_validation(sender, reject, expander.describe(), result);
        }
        if let Some(transcript) = self.resolver.take_transcript() {
            if transcript.clean {
                let (id, domain_rest) = shape.expect("transcript implies shape");
                let key = ScriptKey {
                    id_len: id.len(),
                    domain_rest: domain_rest.to_string(),
                    sender_local: sender.local().to_string(),
                    client_ip: self.peer,
                    impls: self.impls_label.clone(),
                };
                if let Some(entry) = self.build_script(sender, &key, &transcript, &results) {
                    cache.lock().insert_script(key, entry);
                }
            }
        }
        reject
    }

    /// The replay-script shape of `sender` — its probe id and the rest of
    /// the domain (leading dot included) — or `None` when any transparency
    /// gate is closed. The gates guarantee that replaying a recorded
    /// exchange is observably identical to performing it: a cold resolver
    /// cache (which queries happen must not depend on earlier leftovers),
    /// a zero-latency faultless link (no clock advance, no randomness, no
    /// divergent outcomes during evaluation), and a probe-shaped sender
    /// domain whose first label is the unique id.
    fn script_shape<'s>(&self, sender: &'s EmailAddress) -> Option<(&'s str, &'s str)> {
        if !self.resolver.cache_is_empty() {
            return None;
        }
        let link = self.resolver.link();
        if *link.latency() != LatencyModel::ZERO || link.faults().is_active() {
            return None;
        }
        let domain = sender.domain();
        let (id, rest) = domain.split_once('.')?;
        if id.is_empty() || rest.is_empty() {
            return None;
        }
        if !id.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()) {
            return None;
        }
        let domain_rest = &domain[id.len()..];
        // The id must not collide with any other text the evaluation can
        // observe, or the recorded templates would hole non-id content.
        if domain_rest.contains(id) || sender.local().contains(id) {
            return None;
        }
        Some((id, domain_rest))
    }

    /// Replay a memoized evaluation: re-emit every DNS exchange's
    /// observable effects (query log, link charge, metrics, trace span),
    /// then push the recorded verdicts and derive the reject reply from
    /// the *current* configuration. Splicing `id` over the recorded wire
    /// names cannot fail — ids are keyed by length and validated bytes.
    fn replay_script(
        &mut self,
        sender: &EmailAddress,
        id: &str,
        entry: &ScriptEntry,
    ) -> Option<Reply> {
        for step in &entry.steps {
            let name = step.qname_for(id);
            self.resolver.replay_resolve(
                &mut self.rng,
                &name,
                step.rtype,
                step.cache_hit,
                step.outcome_label,
            );
        }
        let mut reject: Option<Reply> = None;
        for (implementation, result) in &entry.results {
            reject = self.record_validation(sender, reject, implementation, *result);
        }
        reject
    }

    /// Turn a clean transcript into a validated [`ScriptEntry`], or `None`
    /// if the evaluation does not generalise over the probe id. Every
    /// name and record string is templatized over the id (refusing
    /// non-label-aligned occurrences), then the whole multi-implementation
    /// evaluation is re-run — side-effect-free — against the templates
    /// spliced for a *different* same-length id. Only when that shadow run
    /// asks exactly the spliced questions and reaches exactly the same
    /// verdicts is the script accepted; any id-specific behaviour fails
    /// the shadow run and the probe shape simply stays live.
    fn build_script(
        &self,
        sender: &EmailAddress,
        key: &ScriptKey,
        transcript: &Transcript,
        results: &[(&'static str, SpfResult)],
    ) -> Option<ScriptEntry> {
        let id = sender.domain().split_once('.').map(|(id, _)| id)?;
        let shadow = rotate_id(id);
        if shadow == id || key.domain_rest.contains(&shadow) || key.sender_local.contains(&shadow)
        {
            return None;
        }
        let mut steps = Vec::with_capacity(transcript.steps.len());
        let mut shadow_steps = Vec::with_capacity(transcript.steps.len());
        for step in &transcript.steps {
            let ascii = step.name.to_ascii();
            if !aligned_occurrences_only(&ascii, id) {
                return None;
            }
            let qname = templatize(&ascii, id)?;
            let outcome = templatize_outcome(&step.outcome, id)?;
            shadow_steps.push((qname, step.rtype, outcome));
            steps.push(ScriptStep {
                qname: step.name.clone(),
                id_offsets: id_wire_offsets(&ascii, id),
                rtype: step.rtype,
                cache_hit: step.cache_hit,
                outcome_label: step.outcome_label(),
            });
        }

        let shadow_domain = format!("{shadow}{}", key.domain_rest);
        let cursor = std::cell::Cell::new(0usize);
        let diverged = std::cell::Cell::new(false);
        let mut dns = |name: &Name, rtype: RecordType| -> Result<LookupOutcome, LookupError> {
            let i = cursor.get();
            cursor.set(i + 1);
            let Some((qname, want_rtype, outcome)) = shadow_steps.get(i) else {
                diverged.set(true);
                return Err(LookupError::Timeout);
            };
            if rtype != *want_rtype || name.to_ascii() != splice_id(qname, &shadow) {
                diverged.set(true);
                return Err(LookupError::Timeout);
            }
            match splice_outcome(outcome, &shadow) {
                Some(outcome) => Ok(outcome),
                None => {
                    diverged.set(true);
                    Err(LookupError::Timeout)
                }
            }
        };
        for (i, behavior) in self.config.spf_impls.iter().enumerate() {
            let mut expander = behavior.expander();
            let verdict = {
                let mut eval = Evaluator::new(&mut dns, &mut expander);
                eval.check_host(self.peer, &key.sender_local, &shadow_domain)
            };
            if diverged.get() || results.get(i).map(|(_, r)| *r) != Some(verdict) {
                return None;
            }
        }
        if diverged.get() || cursor.get() != shadow_steps.len() {
            return None;
        }
        Some(ScriptEntry {
            steps,
            results: results.to_vec(),
        })
    }
}

/// A deterministic same-length, same-alphabet id distinct from `id`, used
/// to shadow-validate replay scripts.
fn rotate_id(id: &str) -> String {
    id.chars()
        .map(|c| match c {
            'z' => 'a',
            '9' => '0',
            'a'..='y' | '0'..='8' => (c as u8 + 1) as char,
            other => other,
        })
        .collect()
}

/// Wire-byte offsets (as [`Name::splice_content`] counts them) of each
/// `id` occurrence in a name's dotted spelling. Every ascii index shifts
/// by exactly one in wire form: each inter-label dot becomes the next
/// label's length octet and the first label gains its own. Occurrences
/// never overlap — [`aligned_occurrences_only`] has already rejected any
/// id adjacent to alphanumeric text.
fn id_wire_offsets(ascii: &str, id: &str) -> Vec<u16> {
    let mut offsets = Vec::new();
    let mut from = 0;
    while let Some(pos) = ascii[from..].find(id) {
        let at = from + pos;
        offsets.push((at + 1) as u16);
        from = at + id.len();
    }
    offsets
}

/// Whether every occurrence of `id` in `text` sits on label boundaries
/// (adjacent characters are absent or non-alphanumeric). A mid-label
/// occurrence means `id` collides with unrelated content and templating
/// it would corrupt the replay.
fn aligned_occurrences_only(text: &str, id: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(id) {
        let at = from + pos;
        let end = at + id.len();
        let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric();
        let after_ok = end == bytes.len() || !bytes[end].is_ascii_alphanumeric();
        if !before_ok || !after_ok {
            return false;
        }
        from = at + 1;
    }
    true
}

/// A recorded lookup outcome with the probe id excised — used only while
/// shadow-validating a script, never stored.
enum OutcomeTemplate {
    Records(Vec<(String, u32, RDataTemplate)>),
    NxDomain,
    NoRecords,
}

enum RDataTemplate {
    /// Record data with no id occurrence anywhere; reused verbatim.
    Plain(RData),
    Txt(Vec<String>),
    Mx { preference: u16, exchange: String },
    Cname(String),
    Ns(String),
    Ptr(String),
}

fn templatize_outcome(outcome: &LookupOutcome, id: &str) -> Option<OutcomeTemplate> {
    Some(match outcome {
        LookupOutcome::NxDomain => OutcomeTemplate::NxDomain,
        LookupOutcome::NoRecords => OutcomeTemplate::NoRecords,
        LookupOutcome::Records(records) => OutcomeTemplate::Records(
            records
                .iter()
                .map(|r| {
                    let name = r.name.to_ascii();
                    if !aligned_occurrences_only(&name, id) {
                        return None;
                    }
                    Some((templatize(&name, id)?, r.ttl, templatize_rdata(&r.rdata, id)?))
                })
                .collect::<Option<Vec<_>>>()?,
        ),
    })
}

fn templatize_rdata(rdata: &RData, id: &str) -> Option<RDataTemplate> {
    let t = |s: &str| -> Option<String> {
        if !aligned_occurrences_only(s, id) {
            return None;
        }
        templatize(s, id)
    };
    Some(match rdata {
        RData::Txt(parts) => {
            RDataTemplate::Txt(parts.iter().map(|p| t(p)).collect::<Option<Vec<_>>>()?)
        }
        RData::Mx {
            preference,
            exchange,
        } => RDataTemplate::Mx {
            preference: *preference,
            exchange: t(&exchange.to_ascii())?,
        },
        RData::Cname(name) => RDataTemplate::Cname(t(&name.to_ascii())?),
        RData::Ns(name) => RDataTemplate::Ns(t(&name.to_ascii())?),
        RData::Ptr(name) => RDataTemplate::Ptr(t(&name.to_ascii())?),
        RData::Soa(soa) => {
            if soa.mname.to_ascii().contains(id) || soa.rname.to_ascii().contains(id) {
                return None;
            }
            RDataTemplate::Plain(rdata.clone())
        }
        RData::Opaque(bytes) => {
            if bytes.windows(id.len()).any(|w| w == id.as_bytes()) {
                return None;
            }
            RDataTemplate::Plain(rdata.clone())
        }
        other => RDataTemplate::Plain(other.clone()),
    })
}

fn splice_outcome(template: &OutcomeTemplate, id: &str) -> Option<LookupOutcome> {
    Some(match template {
        OutcomeTemplate::NxDomain => LookupOutcome::NxDomain,
        OutcomeTemplate::NoRecords => LookupOutcome::NoRecords,
        OutcomeTemplate::Records(records) => LookupOutcome::Records(
            records
                .iter()
                .map(|(name, ttl, rdata)| {
                    Some(Record::new(
                        Name::parse(&splice_id(name, id)).ok()?,
                        *ttl,
                        splice_rdata(rdata, id)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?
                .into(),
        ),
    })
}

fn splice_rdata(template: &RDataTemplate, id: &str) -> Option<RData> {
    Some(match template {
        RDataTemplate::Plain(rdata) => rdata.clone(),
        RDataTemplate::Txt(parts) => {
            RData::Txt(parts.iter().map(|p| splice_id(p, id)).collect())
        }
        RDataTemplate::Mx {
            preference,
            exchange,
        } => RData::Mx {
            preference: *preference,
            exchange: Name::parse(&splice_id(exchange, id)).ok()?,
        },
        RDataTemplate::Cname(name) => RData::Cname(Name::parse(&splice_id(name, id)).ok()?),
        RDataTemplate::Ns(name) => RData::Ns(Name::parse(&splice_id(name, id)).ok()?),
        RDataTemplate::Ptr(name) => RData::Ptr(Name::parse(&splice_id(name, id)).ok()?),
    })
}

impl ServerPolicy for &mut Mta {
    fn on_mail_from(&mut self, sender: Option<&EmailAddress>) -> Option<Reply> {
        if let SmtpQuirk::RejectMailFrom(code) = self.config.quirk {
            return Some(Reply::new(code, "Sender rejected by policy"));
        }
        self.pending_sender = sender.cloned();
        self.rejected_rcpts_this_envelope = 0;
        if self.config.spf_stage == SpfStage::OnMailFrom {
            if let Some(sender) = sender.cloned() {
                if let Some(reject) = self.run_spf(&sender) {
                    return Some(reject);
                }
            }
        }
        None
    }

    fn on_rcpt_to(&mut self, recipient: &EmailAddress) -> Option<Reply> {
        if let SmtpQuirk::RejectAllRcpt(code) = self.config.quirk {
            return Some(Reply::new(code, "No such recipient"));
        }
        let is_postmaster = recipient.local().eq_ignore_ascii_case("postmaster");
        // RFC 5321 §4.5.1 says postmaster MUST be accepted; compliant
        // hosts do, and the unknown-user rejections only apply to
        // ordinary mailboxes. Hosts configured to violate the MUST are
        // the paper's main notification-bounce source.
        if is_postmaster && self.config.reject_postmaster {
            return Some(Reply::mailbox_unavailable());
        }
        if !is_postmaster && self.rejected_rcpts_this_envelope < self.rcpt_reject_first_n {
            self.rejected_rcpts_this_envelope += 1;
            return Some(Reply::mailbox_unavailable());
        }
        if self.config.greylist {
            let key = self
                .pending_sender
                .as_ref()
                .map(|s| format!("{}/{}", s.domain_lower(), recipient.local()))
                .unwrap_or_else(|| format!("<>/{}", recipient.local()));
            if self.greylist_seen.insert(key) {
                return Some(Reply::greylisted());
            }
        }
        None
    }

    fn on_data_begin(&mut self) -> Option<Reply> {
        if let SmtpQuirk::RejectData(code) = self.config.quirk {
            return Some(Reply::new(code, "DATA not accepted"));
        }
        None
    }

    fn on_message(&mut self, _body: &str) -> Option<Reply> {
        if let SmtpQuirk::RejectMessage(code) = self.config.quirk {
            return Some(Reply::new(code, "Message rejected by content policy"));
        }
        if self.config.spf_stage == SpfStage::OnData {
            if let Some(sender) = self.pending_sender.clone() {
                if let Some(reject) = self.run_spf(&sender) {
                    return Some(reject);
                }
            }
        }
        // Blank probe messages are accepted here but would be discarded by
        // the spam filter; the probe design counts on rejection *or*
        // discard, either way no inbox delivery.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_dns::{QueryLog, SpfTestAuthority};
    use spfail_smtp::command::Command;
    use std::sync::Arc;

    fn setup() -> (Directory, QueryLog, SimClock) {
        let directory = Directory::new();
        let log = QueryLog::new();
        directory.register(Arc::new(SpfTestAuthority::new(
            SpfTestAuthority::default_origin(),
            log.clone(),
        )));
        (directory, log, SimClock::new())
    }

    fn mta(config: MtaConfig) -> (Mta, QueryLog) {
        let (directory, log, clock) = setup();
        let m = Mta::new(
            config,
            "198.51.100.9".parse().unwrap(),
            directory,
            clock,
            SimRng::new(7),
        );
        (m, log)
    }

    fn probe_addr() -> EmailAddress {
        EmailAddress::parse("mmj7yzdm0tbk@k7q2.s01.spf-test.dns-lab.org").unwrap()
    }

    fn drive_through_mail_from(m: &mut Mta) -> Reply {
        assert_eq!(m.connect("203.0.113.9".parse().unwrap()), ConnectDecision::Proceed);
        let (mut session, banner) = m.open_session();
        assert_eq!(banner.code, 220);
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()))
    }

    #[test]
    fn vulnerable_mta_emits_the_fingerprint_query() {
        let (mut m, log) = mta(MtaConfig::vulnerable("mx.victim.test"));
        let reply = drive_through_mail_from(&mut m);
        // The probe record always ends in -all, so validation fails and
        // the mail is rejected — by design (§6.2).
        assert_eq!(reply.code, 550);
        let queried: Vec<String> = log.snapshot().iter().map(|e| e.qname.to_ascii()).collect();
        assert!(
            queried.contains(
                &"org.org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org".to_string()
            ),
            "vulnerable duplication fingerprint, got {queried:?}"
        );
        assert_eq!(m.validations().len(), 1);
        assert_eq!(m.validations()[0].implementation, "libspf2-1.2.10");
        assert_eq!(m.validations()[0].result, SpfResult::Fail);
    }

    #[test]
    fn compliant_mta_emits_the_rfc_query() {
        let (mut m, log) = mta(MtaConfig::compliant("mx.good.test"));
        drive_through_mail_from(&mut m);
        let queried: Vec<String> = log.snapshot().iter().map(|e| e.qname.to_ascii()).collect();
        assert!(
            queried.contains(&"k7q2.k7q2.s01.spf-test.dns-lab.org".to_string()),
            "compliant %{{d1r}} expansion, got {queried:?}"
        );
    }

    #[test]
    fn patching_switches_the_fingerprint() {
        let (mut m, log) = mta(MtaConfig::vulnerable("mx.victim.test"));
        drive_through_mail_from(&mut m);
        assert!(log
            .snapshot()
            .iter()
            .any(|e| e.qname.first_label() == Some("org")));
        log.clear();
        m.patch();
        assert!(!m.config().is_vulnerable());
        drive_through_mail_from(&mut m);
        assert!(
            !log.snapshot()
                .iter()
                .any(|e| e.qname.first_label() == Some("org")),
            "after the patch the duplicated expansion must be gone"
        );
    }

    #[test]
    fn ondata_stage_validates_only_at_message() {
        let mut config = MtaConfig::vulnerable("mx.late.test");
        config.spf_stage = SpfStage::OnData;
        let (mut m, log) = mta(config);
        let reply = drive_through_mail_from(&mut m);
        assert!(reply.is_positive());
        assert!(log.is_empty(), "NoMsg-style probes see nothing from OnData hosts");

        // Run a full BlankMsg-style transaction.
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@mx.late.test").unwrap(),
        ));
        session.handle(&Command::Data);
        let final_reply = session.handle_message("");
        assert_eq!(final_reply.code, 550, "SPF fail at end-of-data");
        assert!(!log.is_empty());
    }

    #[test]
    fn never_stage_never_queries() {
        let mut config = MtaConfig::compliant("mx.nospf.test");
        config.spf_stage = SpfStage::Never;
        let (mut m, log) = mta(config);
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@mx.nospf.test").unwrap(),
        ));
        session.handle(&Command::Data);
        session.handle_message("");
        assert!(log.is_empty());
    }

    #[test]
    fn multiple_impls_emit_multiple_patterns() {
        let mut config = MtaConfig::vulnerable("mx.multi.test");
        config.spf_impls = vec![
            spfail_libspf2::MacroBehavior::VulnerableLibSpf2,
            spfail_libspf2::MacroBehavior::Compliant,
        ];
        config.reject_on_spf_fail = false;
        let (mut m, log) = mta(config);
        drive_through_mail_from(&mut m);
        let first_labels: Vec<Option<&str>> = log
            .snapshot()
            .iter()
            .filter(|e| e.qtype == RecordType::A)
            .map(|e| e.qname.first_label().map(|s| s.to_string()))
            .collect::<Vec<_>>()
            .iter()
            .map(|o| o.as_deref().map(|s| if s == "org" { "org" } else { "other" }))
            .collect();
        assert!(first_labels.contains(&Some("org")), "vulnerable pattern present");
        assert!(first_labels.contains(&Some("other")), "compliant pattern present");
        assert_eq!(m.validations().len(), 2);
    }

    #[test]
    fn policy_cache_replay_is_query_log_identical_to_live() {
        // Two hosts in one shard share a PolicyCache; the second probe of
        // the same shape must replay, and the world's query log must be
        // byte-identical to a cache-off world probing the same ids.
        let addr1 = "mmj7yzdm0tbk@k7q2.s01.spf-test.dns-lab.org";
        let addr2 = "mmj7yzdm0tbk@x9f3.s01.spf-test.dns-lab.org";
        let run = |cache: Option<Arc<parking_lot::Mutex<PolicyCache>>>| {
            let (directory, log, clock) = setup();
            let mut logs = Vec::new();
            let mut validations = Vec::new();
            for (i, addr) in [addr1, addr2].iter().enumerate() {
                let mut config = MtaConfig::vulnerable("mx.victim.test");
                config.spf_impls = vec![
                    spfail_libspf2::MacroBehavior::VulnerableLibSpf2,
                    spfail_libspf2::MacroBehavior::Compliant,
                ];
                let mut m = Mta::new(
                    config,
                    format!("198.51.100.{}", 10 + i).parse().unwrap(),
                    directory.clone(),
                    clock.clone(),
                    SimRng::new(7),
                );
                if let Some(cache) = &cache {
                    m.set_policy_cache(Arc::clone(cache));
                }
                m.connect("203.0.113.9".parse().unwrap());
                let (mut session, _) = m.open_session();
                session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
                session.handle(&Command::MailFrom(EmailAddress::parse(addr).unwrap()));
                logs.push(
                    log.snapshot()
                        .iter()
                        .map(|e| format!("{} {} {:?} {}", e.at.as_micros(), e.source, e.qtype, e.qname))
                        .collect::<Vec<_>>(),
                );
                log.clear();
                validations.push(m.validations().to_vec());
            }
            (logs, validations)
        };
        let cache = Arc::new(parking_lot::Mutex::new(PolicyCache::new()));
        let cached = run(Some(Arc::clone(&cache)));
        let baseline = run(None);
        assert_eq!(cached, baseline, "cache on/off worlds must be observably identical");
        let stats = cache.lock().stats();
        assert_eq!(stats.hits, 1, "second probe replays");
        assert!(stats.interned >= 1, "probe policies interned");
    }

    #[test]
    fn policy_cache_colliding_id_stays_live_but_correct() {
        // An id that is a substring of the rest of the zone ("b" occurs in
        // "dns-lab") must refuse memoization and still evaluate correctly.
        let cache = Arc::new(parking_lot::Mutex::new(PolicyCache::new()));
        let (directory, log, clock) = setup();
        for _ in 0..2 {
            let mut m = Mta::new(
                MtaConfig::vulnerable("mx.victim.test"),
                "198.51.100.9".parse().unwrap(),
                directory.clone(),
                clock.clone(),
                SimRng::new(7),
            );
            m.set_policy_cache(Arc::clone(&cache));
            m.connect("203.0.113.9".parse().unwrap());
            let (mut session, _) = m.open_session();
            session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
            let reply = session.handle(&Command::MailFrom(
                EmailAddress::parse("user@b.s01.spf-test.dns-lab.org").unwrap(),
            ));
            assert_eq!(reply.code, 550, "still validated and rejected");
        }
        let stats = cache.lock().stats();
        assert_eq!(stats.hits, 0, "colliding shape never replays");
        assert!(!log.is_empty());
    }

    #[test]
    fn greylisting_rejects_first_attempt_only() {
        let mut config = MtaConfig::compliant("mx.grey.test");
        config.greylist = true;
        config.spf_stage = SpfStage::Never;
        let (mut m, _log) = mta(config);
        let rcpt = EmailAddress::parse("postmaster@mx.grey.test").unwrap();

        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        assert_eq!(session.handle(&Command::RcptTo(rcpt.clone())).code, 450);

        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        assert!(session.handle(&Command::RcptTo(rcpt)).is_positive());
    }

    #[test]
    fn blacklisting_kicks_in_after_threshold() {
        let mut config = MtaConfig::vulnerable("mx.bl.test");
        config.blacklist_after = Some(2);
        let (mut m, _log) = mta(config);
        let peer: IpAddr = "203.0.113.9".parse().unwrap();
        assert_eq!(m.connect(peer), ConnectDecision::Proceed);
        assert_eq!(m.connect(peer), ConnectDecision::Proceed);
        match m.connect(peer) {
            ConnectDecision::RejectedBanner(reply) => {
                assert!(reply.code == 421 || reply.code == 554);
            }
            other => panic!("expected blacklist banner, got {other:?}"),
        }
    }

    #[test]
    fn connect_policies() {
        let mut config = MtaConfig::compliant("mx.refuse.test");
        config.connect = ConnectPolicy::Refuse;
        let (mut m, _) = mta(config);
        assert_eq!(
            m.connect("203.0.113.9".parse().unwrap()),
            ConnectDecision::Refused
        );

        let mut config = MtaConfig::compliant("mx.banner.test");
        config.connect = ConnectPolicy::RejectBanner(554);
        let (mut m, _) = mta(config);
        match m.connect("203.0.113.9".parse().unwrap()) {
            ConnectDecision::RejectedBanner(reply) => assert_eq!(reply.code, 554),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rcpt_ladder_rejection() {
        let mut config = MtaConfig::compliant("mx.ladder.test");
        config.spf_stage = SpfStage::Never;
        let (mut m, _) = mta(config);
        m.set_rcpt_reject_first_n(2);
        m.connect("203.0.113.9".parse().unwrap());
        let (mut session, _) = m.open_session();
        session.handle(&Command::Ehlo("p.test".into()));
        session.handle(&Command::MailFrom(probe_addr()));
        let r1 = session.handle(&Command::RcptTo(
            EmailAddress::parse("mmj7yzdm0tbk@mx.ladder.test").unwrap(),
        ));
        assert_eq!(r1.code, 550);
        let r2 = session.handle(&Command::RcptTo(
            EmailAddress::parse("noreply@mx.ladder.test").unwrap(),
        ));
        assert_eq!(r2.code, 550);
        let r3 = session.handle(&Command::RcptTo(
            EmailAddress::parse("donotreply@mx.ladder.test").unwrap(),
        ));
        assert!(r3.is_positive());
    }

    #[test]
    fn quirks_fire_at_their_stage() {
        type QuirkCheck = fn(&mut Mta) -> u16;
        let cases: [(SmtpQuirk, QuirkCheck); 3] = [
            (SmtpQuirk::RejectMailFrom(553), |m: &mut Mta| {
                drive_through_mail_from(m).code
            }),
            (SmtpQuirk::RejectAllRcpt(550), |m: &mut Mta| {
                m.connect("203.0.113.9".parse().unwrap());
                let (mut s, _) = m.open_session();
                s.handle(&Command::Ehlo("p.test".into()));
                s.handle(&Command::MailFrom(probe_addr()));
                s.handle(&Command::RcptTo(
                    EmailAddress::parse("postmaster@x.test").unwrap(),
                ))
                .code
            }),
            (SmtpQuirk::RejectData(554), |m: &mut Mta| {
                m.connect("203.0.113.9".parse().unwrap());
                let (mut s, _) = m.open_session();
                s.handle(&Command::Ehlo("p.test".into()));
                s.handle(&Command::MailFrom(probe_addr()));
                s.handle(&Command::RcptTo(
                    EmailAddress::parse("postmaster@x.test").unwrap(),
                ));
                s.handle(&Command::Data).code
            }),
        ];
        for (quirk, check) in cases {
            let mut config = MtaConfig::compliant("mx.quirk.test");
            config.spf_stage = SpfStage::Never;
            config.quirk = quirk;
            let (mut m, _) = mta(config);
            let code = check(&mut m);
            assert!((400..600).contains(&code), "{quirk:?} gave {code}");
        }
    }
}
