//! Simulated mail transfer agents.
//!
//! An [`Mta`] glues the substrates together into one probeable server: it
//! speaks SMTP through [`spfail_smtp::ServerSession`], and at the stage its
//! configuration dictates it runs SPF validation — parsing the policy it
//! fetches through the simulated DNS and expanding macros with whichever
//! [`MacroExpander`] implementation it is configured to "link against"
//! (compliant, vulnerable libSPF2, or one of the sloppy variants).
//!
//! Everything the paper's probes observe — which SMTP stage rejects, when
//! DNS queries fire, what shapes the queried names have, greylisting, and
//! eventual blacklisting of the prober — is produced by this crate.
//!
//! [`MacroExpander`]: spfail_spf::expand::MacroExpander

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod mta;

pub use config::{ConnectPolicy, MtaConfig, SmtpQuirk, SpfStage};
pub use mta::{new_policy_cache, Mta, PolicyCacheHandle, ValidationRecord};
