//! Online aggregation for streaming campaigns.
//!
//! Streaming mode cannot keep a [`HostInitialResult`] per host — that is
//! the O(hosts) column the mode exists to avoid. Instead every finished
//! initial measurement is compressed into a [`HostMask`]: a 22-bit
//! fingerprint that preserves *exactly* the predicates the longitudinal
//! engine and every exhibit read from the initial sweep (outcome ladder,
//! macro behaviours, vulnerability, preferred re-probe test). Masks fold
//! into an [`OnlineAggregate`] whose `merge` is associative and
//! commutative by construction — all counters are integers, the stats
//! moments are exact integer sums — so any sharding or round-boundary
//! split of the host stream produces the same totals.
//!
//! [`CampaignSummary`] is the cross-mode equality artifact: the part of a
//! campaign's output that both eager and streaming mode produce, compared
//! bit-for-bit by `tests/streaming_equivalence.rs`.

use std::collections::HashMap;

use spfail_libspf2::MacroBehavior;
use spfail_netsim::MetricsSnapshot;
use spfail_world::{DomainId, HostId};

use crate::campaign::{
    CampaignData, HostClass, HostInitialResult, RoundStatus, SnapshotStatus,
};
use crate::ethics::EthicsAudit;
use crate::probe::ProbeTest;

/// Every macro behaviour, in declaration order; the index of a behaviour
/// in this array is its bit position in a [`HostMask`].
pub const BEHAVIOR_BITS: [MacroBehavior; 9] = [
    MacroBehavior::Compliant,
    MacroBehavior::VulnerableLibSpf2,
    MacroBehavior::PatchedLibSpf2,
    MacroBehavior::NoExpansion,
    MacroBehavior::ReverseNoTruncate,
    MacroBehavior::TruncateNoReverse,
    MacroBehavior::IgnoreTransformers,
    MacroBehavior::EmptyExpansion,
    MacroBehavior::MacroUnsupported,
];

/// A host's initial measurement, compressed to one `u32`.
///
/// Bits 0–8 are the conclusive classification's behaviour set (indexed by
/// [`BEHAVIOR_BITS`]); the remaining bits are the outcome predicates the
/// rest of the system reads. The compression is lossy — probe ids, raw
/// transactions and unknown-pattern *counts* are dropped — but every
/// derived quantity (the [`HostClass`] ladder, tracking, the preferred
/// re-probe test, all Table 3/4/7 predicates) survives exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HostMask(pub u32);

impl HostMask {
    /// `nomsg.refused()`.
    pub const NOMSG_REFUSED: u32 = 1 << 9;
    /// `nomsg.smtp_failure()`.
    pub const NOMSG_FAILURE: u32 = 1 << 10;
    /// `nomsg.spf_measured()`.
    pub const NOMSG_MEASURED: u32 = 1 << 11;
    /// A BlankMsg probe ran.
    pub const BLANK_PRESENT: u32 = 1 << 12;
    /// `blank.smtp_failure()`.
    pub const BLANK_FAILURE: u32 = 1 << 13;
    /// `blank.spf_measured()`.
    pub const BLANK_MEASURED: u32 = 1 << 14;
    /// `classification().is_some()`.
    pub const MEASURED: u32 = 1 << 15;
    /// The vulnerable fingerprint was observed.
    pub const VULNERABLE: u32 = 1 << 16;
    /// `classification().erroneous_non_vulnerable()`.
    pub const ERRONEOUS: u32 = 1 << 17;
    /// `classification().unknown_patterns > 0`.
    pub const UNKNOWN_PATTERNS: u32 = 1 << 18;
    /// `classification().multi_pattern()`.
    pub const MULTI_PATTERN: u32 = 1 << 19;
    /// The conclusive measurement came from the NoMsg test.
    pub const MEASURED_BY_NOMSG: u32 = 1 << 20;
    /// Some probe ended in a transient failure (re-measurable).
    pub const TRANSIENT: u32 = 1 << 21;

    /// Compress one initial result.
    pub fn from_initial(result: &HostInitialResult) -> HostMask {
        let mut bits = 0u32;
        if result.nomsg.refused() {
            bits |= Self::NOMSG_REFUSED;
        }
        if result.nomsg.smtp_failure() {
            bits |= Self::NOMSG_FAILURE;
        }
        if result.nomsg.spf_measured() {
            bits |= Self::NOMSG_MEASURED;
        }
        if let Some(blank) = &result.blankmsg {
            bits |= Self::BLANK_PRESENT;
            if blank.smtp_failure() {
                bits |= Self::BLANK_FAILURE;
            }
            if blank.spf_measured() {
                bits |= Self::BLANK_MEASURED;
            }
        }
        if let Some(classification) = result.classification() {
            bits |= Self::MEASURED;
            for (i, behavior) in BEHAVIOR_BITS.iter().enumerate() {
                if classification.behaviors.contains(behavior) {
                    bits |= 1 << i;
                }
            }
            if classification.vulnerable() {
                bits |= Self::VULNERABLE;
            }
            if classification.erroneous_non_vulnerable() {
                bits |= Self::ERRONEOUS;
            }
            if classification.unknown_patterns > 0 {
                bits |= Self::UNKNOWN_PATTERNS;
            }
            if classification.multi_pattern() {
                bits |= Self::MULTI_PATTERN;
            }
        }
        if result.measured_by() == Some(ProbeTest::NoMsg) {
            bits |= Self::MEASURED_BY_NOMSG;
        }
        if result.transient() {
            bits |= Self::TRANSIENT;
        }
        HostMask(bits)
    }

    fn has(self, bit: u32) -> bool {
        self.0 & bit != 0
    }

    /// Whether the behaviour at `BEHAVIOR_BITS[i]` was observed.
    pub fn behavior(self, i: usize) -> bool {
        debug_assert!(i < BEHAVIOR_BITS.len());
        self.0 & (1 << i) != 0
    }

    /// `classification().is_some()`.
    pub fn measured(self) -> bool {
        self.has(Self::MEASURED)
    }

    /// The vulnerable fingerprint was observed — exactly
    /// [`HostInitialResult::vulnerable`].
    pub fn vulnerable(self) -> bool {
        self.has(Self::VULNERABLE)
    }

    /// Exactly `classification().erroneous_non_vulnerable()`.
    pub fn erroneous(self) -> bool {
        self.has(Self::ERRONEOUS)
    }

    /// Exactly `classification().unknown_patterns > 0`.
    pub fn unknown_patterns(self) -> bool {
        self.has(Self::UNKNOWN_PATTERNS)
    }

    /// Exactly `classification().multi_pattern()`.
    pub fn multi_pattern(self) -> bool {
        self.has(Self::MULTI_PATTERN)
    }

    /// Exactly [`HostInitialResult::transient`].
    pub fn transient(self) -> bool {
        self.has(Self::TRANSIENT)
    }

    /// `nomsg.refused()`.
    pub fn nomsg_refused(self) -> bool {
        self.has(Self::NOMSG_REFUSED)
    }

    /// `nomsg.smtp_failure()`.
    pub fn nomsg_failure(self) -> bool {
        self.has(Self::NOMSG_FAILURE)
    }

    /// `nomsg.spf_measured()`.
    pub fn nomsg_measured(self) -> bool {
        self.has(Self::NOMSG_MEASURED)
    }

    /// Whether a BlankMsg probe ran.
    pub fn blank_present(self) -> bool {
        self.has(Self::BLANK_PRESENT)
    }

    /// `blank.smtp_failure()` (false when no BlankMsg probe ran).
    pub fn blank_failure(self) -> bool {
        self.has(Self::BLANK_FAILURE)
    }

    /// `blank.spf_measured()` (false when no BlankMsg probe ran).
    pub fn blank_measured(self) -> bool {
        self.has(Self::BLANK_MEASURED)
    }

    /// The probe variant that produced the conclusive measurement —
    /// exactly [`HostInitialResult::measured_by`].
    pub fn measured_by(self) -> Option<ProbeTest> {
        if self.has(Self::MEASURED_BY_NOMSG) {
            Some(ProbeTest::NoMsg)
        } else if self.measured() {
            Some(ProbeTest::BlankMsg)
        } else {
            None
        }
    }

    /// The Table 3 outcome ladder — exactly [`HostInitialResult::class`].
    pub fn class(self) -> HostClass {
        if self.measured() {
            return HostClass::SpfMeasured;
        }
        if self.nomsg_refused() {
            return HostClass::Refused;
        }
        if self.nomsg_failure() || self.blank_failure() {
            return HostClass::SmtpFailure;
        }
        HostClass::SpfNotMeasured
    }

    /// Whether the longitudinal engine tracks this host — exactly the
    /// membership test of `Campaign::derive_tracking` (transient hosts
    /// are only re-tracked when also vulnerable, so the vulnerable bit
    /// alone decides).
    pub fn tracked(self) -> bool {
        self.vulnerable()
    }
}

/// Number of host-id series buckets in an [`OnlineAggregate`].
pub const SERIES_BUCKETS: usize = 16;

/// A bounded-size, exactly-mergeable fold of host masks.
///
/// Merging is associative and commutative because every field is either
/// an integer sum, an integer max, or delegates to a merge with the same
/// algebra ([`EthicsAudit::merge`], [`MetricsSnapshot::merge`]). The
/// stats moments are *integer* sums (u128 for the squares), so there is
/// no floating-point reassociation to break bit-for-bit equality across
/// shard counts or stream splits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineAggregate {
    /// Hosts folded in.
    pub hosts: u64,
    /// Table 3 ladder counts, indexed Refused/SmtpFailure/SpfMeasured/
    /// SpfNotMeasured.
    pub class_counts: [u64; 4],
    /// Hosts showing each behaviour, indexed by [`BEHAVIOR_BITS`].
    pub behavior_counts: [u64; 9],
    /// Hosts with the vulnerable fingerprint.
    pub vulnerable: u64,
    /// Hosts expanding erroneously without being vulnerable.
    pub erroneous: u64,
    /// Hosts with at least one unknown expansion pattern.
    pub unknown_patterns: u64,
    /// Hosts showing ≥2 distinct expansion patterns.
    pub multi_pattern: u64,
    /// Hosts with a transient probe failure.
    pub transient: u64,
    /// Hosts measured by the NoMsg test.
    pub measured_by_nomsg: u64,
    /// Hosts that ran a BlankMsg probe.
    pub blank_probes: u64,
    /// Exact moments of the per-host distinct-behaviour count:
    /// observations (measured hosts), sum, and sum of squares.
    pub moment_count: u64,
    /// Sum of per-host behaviour-set sizes.
    pub moment_sum: u128,
    /// Sum of squared per-host behaviour-set sizes.
    pub moment_sum_sq: u128,
    /// Hosts per `host.0 % SERIES_BUCKETS` bucket — a split-invariance
    /// witness: any partition of the host stream folds to the same
    /// histogram.
    pub bucket_hosts: [u64; SERIES_BUCKETS],
    /// Vulnerable hosts per bucket.
    pub bucket_vulnerable: [u64; SERIES_BUCKETS],
    /// Self-restraint totals folded from finished probers.
    pub ethics: EthicsAudit,
    /// Network-layer totals folded from finished probers.
    pub network: MetricsSnapshot,
}

impl OnlineAggregate {
    /// Fold one host's mask in.
    pub fn observe(&mut self, host: HostId, mask: HostMask) {
        self.hosts += 1;
        let class_idx = match mask.class() {
            HostClass::Refused => 0,
            HostClass::SmtpFailure => 1,
            HostClass::SpfMeasured => 2,
            HostClass::SpfNotMeasured => 3,
        };
        self.class_counts[class_idx] += 1;
        let mut behaviors = 0u64;
        for i in 0..BEHAVIOR_BITS.len() {
            if mask.behavior(i) {
                self.behavior_counts[i] += 1;
                behaviors += 1;
            }
        }
        if mask.vulnerable() {
            self.vulnerable += 1;
        }
        if mask.erroneous() {
            self.erroneous += 1;
        }
        if mask.unknown_patterns() {
            self.unknown_patterns += 1;
        }
        if mask.multi_pattern() {
            self.multi_pattern += 1;
        }
        if mask.transient() {
            self.transient += 1;
        }
        if mask.measured_by() == Some(ProbeTest::NoMsg) {
            self.measured_by_nomsg += 1;
        }
        if mask.blank_present() {
            self.blank_probes += 1;
        }
        if mask.measured() {
            self.moment_count += 1;
            self.moment_sum += u128::from(behaviors);
            self.moment_sum_sq += u128::from(behaviors) * u128::from(behaviors);
        }
        let bucket = host.0 as usize % SERIES_BUCKETS;
        self.bucket_hosts[bucket] += 1;
        if mask.vulnerable() {
            self.bucket_vulnerable[bucket] += 1;
        }
    }

    /// Fold a finished prober's totals in.
    pub fn observe_totals(&mut self, ethics: &EthicsAudit, network: &MetricsSnapshot) {
        self.ethics = self.ethics.merge(ethics);
        self.network = self.network.merge(network);
    }

    /// The associative, commutative merge: `fold(A ∪ B) ==
    /// merge(fold(A), fold(B))` for any partition of the host stream.
    pub fn merge(&self, other: &OnlineAggregate) -> OnlineAggregate {
        let mut out = self.clone();
        out.hosts += other.hosts;
        for i in 0..4 {
            out.class_counts[i] += other.class_counts[i];
        }
        for i in 0..BEHAVIOR_BITS.len() {
            out.behavior_counts[i] += other.behavior_counts[i];
        }
        out.vulnerable += other.vulnerable;
        out.erroneous += other.erroneous;
        out.unknown_patterns += other.unknown_patterns;
        out.multi_pattern += other.multi_pattern;
        out.transient += other.transient;
        out.measured_by_nomsg += other.measured_by_nomsg;
        out.blank_probes += other.blank_probes;
        out.moment_count += other.moment_count;
        out.moment_sum += other.moment_sum;
        out.moment_sum_sq += other.moment_sum_sq;
        for i in 0..SERIES_BUCKETS {
            out.bucket_hosts[i] += other.bucket_hosts[i];
            out.bucket_vulnerable[i] += other.bucket_vulnerable[i];
        }
        out.ethics = out.ethics.merge(&other.ethics);
        out.network = out.network.merge(&other.network);
        out
    }

    /// Mean of the per-host distinct-behaviour count (exact ratio of
    /// integer totals, computed once at read time).
    pub fn behavior_mean(&self) -> f64 {
        if self.moment_count == 0 {
            return 0.0;
        }
        self.moment_sum as f64 / self.moment_count as f64
    }

    /// Population variance of the per-host distinct-behaviour count.
    pub fn behavior_variance(&self) -> f64 {
        if self.moment_count == 0 {
            return 0.0;
        }
        let n = self.moment_count as f64;
        let mean = self.behavior_mean();
        (self.moment_sum_sq as f64 / n) - mean * mean
    }

    /// Fold an entire mask column (index = host id).
    pub fn from_masks(masks: &[u32]) -> OnlineAggregate {
        let mut agg = OnlineAggregate::default();
        for (i, &bits) in masks.iter().enumerate() {
            agg.observe(HostId(i as u32), HostMask(bits));
        }
        agg
    }
}

/// The part of a campaign's output that eager and streaming mode both
/// produce, bit for bit: the cross-mode equality artifact.
///
/// Eager mode derives it from the full [`CampaignData`]; streaming mode
/// carries `masks` through the campaign instead of per-host initial
/// results and fills the rest from the same longitudinal engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// One [`HostMask`] per host, indexed by host id.
    pub masks: Vec<u32>,
    /// Hosts tracked longitudinally (sorted).
    pub tracked: Vec<HostId>,
    /// Initially vulnerable domains (sorted).
    pub vulnerable_domains: Vec<DomainId>,
    /// Per-round statuses, exactly [`CampaignData::rounds`].
    pub rounds: Vec<(u16, HashMap<HostId, RoundStatus>)>,
    /// The final snapshot, exactly [`CampaignData::snapshot`].
    pub snapshot: HashMap<DomainId, SnapshotStatus>,
    /// The campaign-wide self-restraint audit.
    pub ethics: EthicsAudit,
    /// The campaign-wide network totals.
    pub network: MetricsSnapshot,
}

impl CampaignSummary {
    /// Derive the summary from eager-mode campaign data. The initial
    /// sweep probes every host exactly once, so `data.initial` is a
    /// dense host column; any gap is a bug worth failing loudly on.
    pub fn from_data(data: &CampaignData) -> CampaignSummary {
        let n = data.initial.results.len();
        let mut masks = vec![0u32; n];
        for (host, result) in &data.initial.results {
            let idx = host.0 as usize;
            assert!(idx < n, "initial results are a dense host column");
            masks[idx] = HostMask::from_initial(result).0;
        }
        CampaignSummary {
            masks,
            tracked: data.tracked.clone(),
            vulnerable_domains: data.vulnerable_domains.clone(),
            rounds: data.rounds.clone(),
            snapshot: data.snapshot.clone(),
            ethics: data.ethics.clone(),
            network: data.network,
        }
    }

    /// The aggregate view of the mask column.
    pub fn aggregate(&self) -> OnlineAggregate {
        let mut agg = OnlineAggregate::from_masks(&self.masks);
        agg.observe_totals(&self.ethics, &self.network);
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_world::{World, WorldConfig};

    fn small_run() -> CampaignData {
        let world = World::generate(WorldConfig {
            seed: 7,
            scale: 0.004,
            ..WorldConfig::default()
        });
        crate::CampaignBuilder::new().run(&world).data
    }

    #[test]
    fn mask_preserves_every_initial_predicate() {
        let data = small_run();
        for (host, result) in &data.initial.results {
            let mask = HostMask::from_initial(result);
            assert_eq!(mask.class(), result.class(), "host {host:?}");
            assert_eq!(mask.vulnerable(), result.vulnerable());
            assert_eq!(mask.transient(), result.transient());
            assert_eq!(mask.measured_by(), result.measured_by());
            assert_eq!(mask.measured(), result.classification().is_some());
            assert_eq!(mask.nomsg_refused(), result.nomsg.refused());
            assert_eq!(mask.nomsg_failure(), result.nomsg.smtp_failure());
            assert_eq!(mask.nomsg_measured(), result.nomsg.spf_measured());
            assert_eq!(mask.blank_present(), result.blankmsg.is_some());
            assert_eq!(
                mask.blank_failure(),
                result.blankmsg.as_ref().is_some_and(|b| b.smtp_failure())
            );
            assert_eq!(
                mask.blank_measured(),
                result.blankmsg.as_ref().is_some_and(|b| b.spf_measured())
            );
            if let Some(c) = result.classification() {
                assert_eq!(mask.erroneous(), c.erroneous_non_vulnerable());
                assert_eq!(mask.unknown_patterns(), c.unknown_patterns > 0);
                assert_eq!(mask.multi_pattern(), c.multi_pattern());
                for (i, b) in BEHAVIOR_BITS.iter().enumerate() {
                    assert_eq!(mask.behavior(i), c.behaviors.contains(b));
                }
            }
        }
    }

    #[test]
    fn tracked_bit_matches_derive_tracking() {
        let data = small_run();
        let from_masks: Vec<HostId> = {
            let summary = CampaignSummary::from_data(&data);
            summary
                .masks
                .iter()
                .enumerate()
                .filter(|(_, &m)| HostMask(m).tracked())
                .map(|(i, _)| HostId(i as u32))
                .collect()
        };
        assert_eq!(from_masks, data.tracked);
    }

    #[test]
    fn aggregate_totals_match_direct_counts() {
        let data = small_run();
        let summary = CampaignSummary::from_data(&data);
        let agg = summary.aggregate();
        assert_eq!(agg.hosts as usize, data.initial.results.len());
        assert_eq!(agg.vulnerable as usize, data.tracked.len());
        let measured = data
            .initial
            .results
            .values()
            .filter(|r| r.classification().is_some())
            .count();
        assert_eq!(agg.class_counts[2] as usize, measured);
        assert_eq!(agg.moment_count as usize, measured);
        assert_eq!(agg.ethics, data.ethics);
        assert_eq!(agg.network, data.network);
    }

    #[test]
    fn merge_is_associative_and_split_invariant() {
        let data = small_run();
        let summary = CampaignSummary::from_data(&data);
        let whole = OnlineAggregate::from_masks(&summary.masks);
        // Split the column three ways at arbitrary points.
        let n = summary.masks.len();
        let (a_end, b_end) = (n / 3, 2 * n / 3);
        let fold = |range: std::ops::Range<usize>| {
            let mut agg = OnlineAggregate::default();
            for i in range {
                agg.observe(HostId(i as u32), HostMask(summary.masks[i]));
            }
            agg
        };
        let (a, b, c) = (fold(0..a_end), fold(a_end..b_end), fold(b_end..n));
        assert_eq!(a.merge(&b).merge(&c), whole);
        assert_eq!(a.merge(&b.merge(&c)), whole);
        assert_eq!(c.merge(&a).merge(&b), whole, "commutes");
    }
}
