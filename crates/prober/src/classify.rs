//! Classify a server's SPF implementation from its DNS queries.
//!
//! The measurement zone serves every probe domain the policy
//!
//! ```text
//! v=spf1 a:%{d1r}.<id>.<suite>.Z a:b.<id>.<suite>.Z -all
//! ```
//!
//! so a validating server issues a TXT query for `<id>.<suite>.Z`, one A
//! query whose name reveals how it expanded `%{d1r}`, and one baseline A
//! query for `b.<id>.<suite>.Z`. The expansion prefix decodes as:
//!
//! | prefix (labels before `<id>.<suite>.Z`)    | behaviour             |
//! |--------------------------------------------|-----------------------|
//! | `<id>`                                     | RFC-compliant         |
//! | `org.org.dns-lab.spf-test.<suite>.<id>`    | **vulnerable libSPF2**|
//! | `org.dns-lab.spf-test.<suite>.<id>`        | reverse, no truncate  |
//! | `org`                                      | truncate, no reverse  |
//! | `<id>.<suite>.spf-test.dns-lab.org`        | transformers ignored  |
//! | `%{d1r}` (literal)                         | no expansion          |
//! | *(empty)*                                  | empty expansion       |
//! | *(TXT only, no A at all)*                  | macros unsupported    |

use std::collections::BTreeSet;

use spfail_dns::{Name, QueryLogEntry, RecordType};
use spfail_libspf2::MacroBehavior;

/// One named, intentional divergence from RFC 7208 behaviour.
///
/// This table is the single source of truth shared by two consumers:
///
/// * the **online classifier** below, which decodes the expansion prefix
///   a server queried into a [`MacroBehavior`] and names it via
///   [`quirks_for_behavior`];
/// * the **offline differential oracle** (`spfail-conformance`), which
///   evaluates generated policies through every expander and must match
///   each observed divergence against exactly one of these names — any
///   divergence *not* in this list is a bug, not a quirk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownQuirk {
    /// Stable identifier used in tables, corpus files and CI output.
    pub name: &'static str,
    /// The expansion behaviour this quirk is part of, when it maps onto
    /// one of the measured behaviour classes.
    pub behavior: Option<MacroBehavior>,
    /// The CVE this quirk fingerprints, if any.
    pub cve: Option<&'static str>,
    /// Whether exercising the quirk can corrupt the simulated heap
    /// (detected by `spfail_libspf2::MemSim` overflow events).
    pub overflows_heap: bool,
    /// One-line description of the divergence.
    pub description: &'static str,
}

/// The explicit allowlist of every divergence the reproduction treats as
/// intentional. Paper §4.2 (libSPF2 fingerprints) and §7.9 (the "other
/// erroneous" behaviours).
pub const KNOWN_QUIRKS: &[KnownQuirk] = &[
    KnownQuirk {
        name: "dup-first-reversed-label",
        behavior: Some(MacroBehavior::VulnerableLibSpf2),
        cve: Some("CVE-2021-33913"),
        overflows_heap: false,
        description: "reverse+truncate re-emits the first reversed label \
                      (example.com -> com.com.example); the benign, remotely \
                      visible fingerprint",
    },
    KnownQuirk {
        name: "bogus-length-overflow",
        behavior: Some(MacroBehavior::VulnerableLibSpf2),
        cve: Some("CVE-2021-33913"),
        overflows_heap: true,
        description: "URL-escape allocation sized from the truncated length \
                      while the full duplicated expansion is written",
    },
    KnownQuirk {
        name: "sign-extended-escape",
        behavior: Some(MacroBehavior::VulnerableLibSpf2),
        cve: Some("CVE-2021-33912"),
        overflows_heap: true,
        description: "bytes >= 0x80 escape as %ffffffxx through signed-char \
                      sign-extension, 9 bytes where 3 were budgeted",
    },
    KnownQuirk {
        name: "lowercase-hex-escape",
        behavior: None,
        cve: None,
        overflows_heap: false,
        description: "sprintf(\"%%%02x\") emits lowercase hex digits where the \
                      RFC reference escapes uppercase; both libSPF2 releases, \
                      wire-equivalent because DNS names compare case-blind",
    },
    KnownQuirk {
        name: "no-expansion",
        behavior: Some(MacroBehavior::NoExpansion),
        cve: None,
        overflows_heap: false,
        description: "macro text treated as literal data (queries %{d1r} verbatim)",
    },
    KnownQuirk {
        name: "reverse-no-truncate",
        behavior: Some(MacroBehavior::ReverseNoTruncate),
        cve: None,
        overflows_heap: false,
        description: "honours reversal and delimiters but drops the digit count",
    },
    KnownQuirk {
        name: "truncate-no-reverse",
        behavior: Some(MacroBehavior::TruncateNoReverse),
        cve: None,
        overflows_heap: false,
        description: "honours the digit count but never reverses",
    },
    KnownQuirk {
        name: "ignore-transformers",
        behavior: Some(MacroBehavior::IgnoreTransformers),
        cve: None,
        overflows_heap: false,
        description: "substitutes the raw macro value, ignoring transformers",
    },
    KnownQuirk {
        name: "empty-expansion",
        behavior: Some(MacroBehavior::EmptyExpansion),
        cve: None,
        overflows_heap: false,
        description: "macros expand to the empty string; a leading dot is trimmed",
    },
    KnownQuirk {
        name: "macro-unsupported",
        behavior: Some(MacroBehavior::MacroUnsupported),
        cve: None,
        overflows_heap: false,
        description: "macro-bearing terms abort evaluation entirely",
    },
];

/// Look a quirk up by its stable name.
pub fn quirk_by_name(name: &str) -> Option<&'static KnownQuirk> {
    KNOWN_QUIRKS.iter().find(|q| q.name == name)
}

/// All quirks attributed to one expansion behaviour.
pub fn quirks_for_behavior(behavior: MacroBehavior) -> Vec<&'static KnownQuirk> {
    KNOWN_QUIRKS
        .iter()
        .filter(|q| q.behavior == Some(behavior))
        .collect()
}

/// The classification of one probe's DNS activity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Classification {
    /// Whether the SPF policy TXT record was fetched at all.
    pub spf_triggered: bool,
    /// The distinct expansion behaviours observed (≥2 means the host runs
    /// multiple SPF implementations, §7.9).
    pub behaviors: BTreeSet<MacroBehavior>,
    /// Expansion prefixes that matched no known pattern.
    pub unknown_patterns: usize,
}

impl Classification {
    /// Whether the probe produced a usable SPF measurement.
    pub fn conclusive(&self) -> bool {
        self.spf_triggered && (!self.behaviors.is_empty() || self.unknown_patterns > 0)
    }

    /// Whether the vulnerable libSPF2 fingerprint was observed.
    pub fn vulnerable(&self) -> bool {
        self.behaviors.contains(&MacroBehavior::VulnerableLibSpf2)
    }

    /// Whether a non-vulnerable erroneous expansion was observed.
    pub fn erroneous_non_vulnerable(&self) -> bool {
        self.unknown_patterns > 0
            || self
                .behaviors
                .iter()
                .any(|b| b.is_erroneous_but_not_vulnerable())
    }

    /// Whether ≥2 distinct expansion patterns were observed.
    pub fn multi_pattern(&self) -> bool {
        self.behaviors.len() + usize::from(self.unknown_patterns > 0) >= 2
    }

    /// Whether only RFC-compliant expansion was observed.
    pub fn compliant_only(&self) -> bool {
        self.conclusive() && !self.vulnerable() && !self.erroneous_non_vulnerable()
    }

    /// The allowlist names ([`KNOWN_QUIRKS`]) of every non-compliant
    /// behaviour observed — the vocabulary shared with the conformance
    /// oracle's divergence reports.
    pub fn quirk_names(&self) -> BTreeSet<&'static str> {
        self.behaviors
            .iter()
            .flat_map(|&b| quirks_for_behavior(b))
            .map(|q| q.name)
            .collect()
    }
}

/// Classify the query-log window of one probe identified by
/// `<id>.<suite>` under the measurement zone `zone`.
pub fn classify(
    entries: &[QueryLogEntry],
    id: &str,
    suite: &str,
    zone: &Name,
) -> Classification {
    let mut result = Classification::default();
    let probe_domain = match zone.child(suite).and_then(|n| n.child(id)) {
        Ok(name) => name,
        Err(_) => return result,
    };
    for entry in entries {
        // Only queries carrying this probe's unique labels are ours.
        let Some(prefix) = entry.qname.strip_suffix(&probe_domain) else {
            continue;
        };
        match entry.qtype {
            RecordType::TXT | RecordType::SPF if prefix.is_empty() => {
                result.spf_triggered = true;
            }
            RecordType::A | RecordType::AAAA => {
                match decode_prefix(&prefix, id, suite) {
                    Decoded::Baseline => {}
                    Decoded::Behavior(b) => {
                        result.behaviors.insert(b);
                    }
                    Decoded::Unknown => result.unknown_patterns += 1,
                }
            }
            _ => {}
        }
    }
    // TXT fetched but not a single address query: the implementation bails
    // on macro-bearing terms.
    if result.spf_triggered && result.behaviors.is_empty() && result.unknown_patterns == 0 {
        let any_address = entries.iter().any(|e| {
            e.qtype.is_address() && e.qname.strip_suffix(&probe_domain).is_some()
        });
        if !any_address {
            result.behaviors.insert(MacroBehavior::MacroUnsupported);
        }
    }
    result
}

enum Decoded {
    Baseline,
    Behavior(MacroBehavior),
    Unknown,
}

fn decode_prefix(prefix: &[String], id: &str, suite: &str) -> Decoded {
    let eq = |a: &str, b: &str| a.eq_ignore_ascii_case(b);
    match prefix.len() {
        0 => Decoded::Behavior(MacroBehavior::EmptyExpansion),
        1 => {
            let label = prefix[0].as_str();
            if eq(label, "b") {
                Decoded::Baseline
            } else if eq(label, id) {
                Decoded::Behavior(MacroBehavior::Compliant)
            } else if eq(label, "org") {
                Decoded::Behavior(MacroBehavior::TruncateNoReverse)
            } else if label.contains('%') {
                Decoded::Behavior(MacroBehavior::NoExpansion)
            } else {
                Decoded::Unknown
            }
        }
        5 => {
            let reversed_ok = eq(&prefix[0], "org")
                && eq(&prefix[1], "dns-lab")
                && eq(&prefix[2], "spf-test")
                && eq(&prefix[3], suite)
                && eq(&prefix[4], id);
            let forward_ok = eq(&prefix[0], id)
                && eq(&prefix[1], suite)
                && eq(&prefix[2], "spf-test")
                && eq(&prefix[3], "dns-lab")
                && eq(&prefix[4], "org");
            if reversed_ok {
                Decoded::Behavior(MacroBehavior::ReverseNoTruncate)
            } else if forward_ok {
                Decoded::Behavior(MacroBehavior::IgnoreTransformers)
            } else {
                Decoded::Unknown
            }
        }
        6 => {
            let dup_ok = eq(&prefix[0], "org")
                && eq(&prefix[1], "org")
                && eq(&prefix[2], "dns-lab")
                && eq(&prefix[3], "spf-test")
                && eq(&prefix[4], suite)
                && eq(&prefix[5], id);
            if dup_ok {
                Decoded::Behavior(MacroBehavior::VulnerableLibSpf2)
            } else {
                Decoded::Unknown
            }
        }
        _ => Decoded::Unknown,
    }
}

/// Labels a probe id must never collide with (they appear as fixed labels
/// in expansion fingerprints).
pub const RESERVED_ID_LABELS: [&str; 4] = ["b", "org", "dns-lab", "spf-test"];

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_netsim::SimTime;

    fn zone() -> Name {
        Name::parse("spf-test.dns-lab.org").unwrap()
    }

    fn entry(qname: &str, qtype: RecordType) -> QueryLogEntry {
        QueryLogEntry {
            at: SimTime::EPOCH,
            source: "198.51.100.1".parse().unwrap(),
            qname: Name::parse(qname).unwrap(),
            qtype,
        }
    }

    fn txt() -> QueryLogEntry {
        entry("k7q2.s01.spf-test.dns-lab.org", RecordType::TXT)
    }

    fn baseline() -> QueryLogEntry {
        entry("b.k7q2.s01.spf-test.dns-lab.org", RecordType::A)
    }

    fn classify_entries(entries: Vec<QueryLogEntry>) -> Classification {
        classify(&entries, "k7q2", "s01", &zone())
    }

    #[test]
    fn compliant_host() {
        let c = classify_entries(vec![
            txt(),
            entry("k7q2.k7q2.s01.spf-test.dns-lab.org", RecordType::A),
            baseline(),
        ]);
        assert!(c.conclusive());
        assert!(c.compliant_only());
        assert!(!c.vulnerable());
        assert!(!c.multi_pattern());
    }

    #[test]
    fn vulnerable_host() {
        let c = classify_entries(vec![
            txt(),
            entry(
                "org.org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org",
                RecordType::A,
            ),
            baseline(),
        ]);
        assert!(c.vulnerable());
        assert!(!c.erroneous_non_vulnerable());
        assert!(c.conclusive());
    }

    #[test]
    fn quirky_hosts() {
        let cases = [
            (
                "org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org",
                MacroBehavior::ReverseNoTruncate,
            ),
            (
                "org.k7q2.s01.spf-test.dns-lab.org",
                MacroBehavior::TruncateNoReverse,
            ),
            (
                "k7q2.s01.spf-test.dns-lab.org.k7q2.s01.spf-test.dns-lab.org",
                MacroBehavior::IgnoreTransformers,
            ),
            (
                "%{d1r}.k7q2.s01.spf-test.dns-lab.org",
                MacroBehavior::NoExpansion,
            ),
        ];
        for (qname, expected) in cases {
            let c = classify_entries(vec![txt(), entry(qname, RecordType::A), baseline()]);
            assert!(c.behaviors.contains(&expected), "{qname} -> {expected:?}");
            assert!(c.erroneous_non_vulnerable());
            assert!(!c.vulnerable());
        }
    }

    #[test]
    fn empty_expansion_queries_probe_domain_itself() {
        let c = classify_entries(vec![
            txt(),
            entry("k7q2.s01.spf-test.dns-lab.org", RecordType::A),
            baseline(),
        ]);
        assert!(c.behaviors.contains(&MacroBehavior::EmptyExpansion));
    }

    #[test]
    fn macro_unsupported_is_txt_only() {
        let c = classify_entries(vec![txt()]);
        assert!(c.spf_triggered);
        assert!(c.behaviors.contains(&MacroBehavior::MacroUnsupported));
        assert!(c.conclusive());
    }

    #[test]
    fn no_queries_is_inconclusive() {
        let c = classify_entries(vec![]);
        assert!(!c.spf_triggered);
        assert!(!c.conclusive());
    }

    #[test]
    fn multi_pattern_hosts_are_detected() {
        let c = classify_entries(vec![
            txt(),
            entry(
                "org.org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org",
                RecordType::A,
            ),
            entry("k7q2.k7q2.s01.spf-test.dns-lab.org", RecordType::A),
            baseline(),
        ]);
        assert!(c.multi_pattern());
        assert!(c.vulnerable());
        assert_eq!(c.behaviors.len(), 2);
    }

    #[test]
    fn other_probes_queries_are_ignored() {
        let c = classify_entries(vec![
            txt(),
            // A different probe id entirely.
            entry("zzzz.zzzz.s01.spf-test.dns-lab.org", RecordType::A),
            baseline(),
        ]);
        assert!(!c.vulnerable());
        // Only the baseline + TXT matched this probe: macro unsupported is
        // NOT inferred because an address query *was* seen for the domain.
        assert!(c.behaviors.is_empty() || c.behaviors.contains(&MacroBehavior::MacroUnsupported));
    }

    #[test]
    fn quirk_allowlist_is_consistent() {
        // Names are unique and kebab-case.
        let mut names: Vec<&str> = KNOWN_QUIRKS.iter().map(|q| q.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate quirk names");
        for q in KNOWN_QUIRKS {
            assert!(
                q.name.bytes().all(|b| b.is_ascii_lowercase() || b == b'-' || b.is_ascii_digit()),
                "{} not kebab-case",
                q.name
            );
        }
        // Every non-compliant behaviour class has at least one named quirk,
        // and the vulnerable class names both CVEs.
        for b in [
            MacroBehavior::VulnerableLibSpf2,
            MacroBehavior::NoExpansion,
            MacroBehavior::ReverseNoTruncate,
            MacroBehavior::TruncateNoReverse,
            MacroBehavior::IgnoreTransformers,
            MacroBehavior::EmptyExpansion,
            MacroBehavior::MacroUnsupported,
        ] {
            assert!(!quirks_for_behavior(b).is_empty(), "{b:?} has no quirk");
        }
        let cves: BTreeSet<&str> = quirks_for_behavior(MacroBehavior::VulnerableLibSpf2)
            .iter()
            .filter_map(|q| q.cve)
            .collect();
        assert!(cves.contains("CVE-2021-33912") && cves.contains("CVE-2021-33913"));
        assert!(quirk_by_name("lowercase-hex-escape").is_some());
        assert!(quirk_by_name("nonexistent").is_none());
    }

    #[test]
    fn classification_exposes_quirk_names() {
        let c = classify_entries(vec![
            txt(),
            entry(
                "org.org.dns-lab.spf-test.s01.k7q2.k7q2.s01.spf-test.dns-lab.org",
                RecordType::A,
            ),
            baseline(),
        ]);
        let names = c.quirk_names();
        assert!(names.contains("dup-first-reversed-label"));
        assert!(names.contains("sign-extended-escape"));
        assert!(!names.contains("no-expansion"));
    }

    #[test]
    fn garbled_prefixes_count_as_unknown() {
        let c = classify_entries(vec![
            txt(),
            entry("x.y.z.k7q2.s01.spf-test.dns-lab.org", RecordType::A),
            baseline(),
        ]);
        assert_eq!(c.unknown_patterns, 1);
        assert!(c.erroneous_non_vulnerable());
        assert!(c.conclusive());
    }
}
