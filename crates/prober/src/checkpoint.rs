//! The serialisable campaign state behind [`Session`] checkpointing.
//!
//! [`CampaignState`] is the complete durable-state inventory of a
//! campaign at a round boundary (see the [`crate::session`] module docs
//! for why this list is exhaustive): configuration, world identity,
//! stage progress, the sweep results so far, merged audit/network
//! totals, each live worker's clock/ethics/metrics/counters, and the
//! trace records emitted so far.
//!
//! The on-disk form is a hand-rolled line-oriented text format — one
//! `keyword operand…` line per fact, every collection in canonical
//! (sorted) order, floats as their exact IEEE-754 bit patterns — so a
//! state round-trips bit-for-bit without a JSON parser dependency and
//! diffs of two checkpoints are meaningful. [`CampaignState::to_text`]
//! and [`CampaignState::parse`] are exact inverses.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::net::IpAddr;

use spfail_libspf2::MacroBehavior;
use spfail_netsim::{
    FaultPlan, FaultProfile, FlakyWindow, MetricsSnapshot, ProbeError, SimDuration, SimTime,
};
use spfail_smtp::client::TransactionOutcome;
use spfail_trace::{escape_field, unescape_field, ProbeRecord, TraceConfig};
use spfail_world::HostId;

use crate::campaign::{CampaignBuilder, HostInitialResult, RoundStatus};
use crate::classify::Classification;
use crate::probe::{ProbeOptions, ProbeOutcome, ProbeTest, RetryPolicy};
use crate::session::SessionStats;
use crate::EthicsAudit;

/// The durable state of one live probing worker at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerState {
    /// The worker's simulated clock, in microseconds since the epoch.
    pub clock_micros: u64,
    /// The worker's ethics audit counters.
    pub ethics: EthicsAudit,
    /// The worker's per-address last-contact history, address-sorted.
    pub contacts: Vec<(IpAddr, SimTime)>,
    /// The worker's network counters.
    pub metrics: MetricsSnapshot,
    /// The worker's probe-repetition counters
    /// (`(host, day, test, extra) -> occurrence`), key-sorted.
    pub occurrences: Vec<((u32, u16, u8, u32), u64)>,
    /// The worker's per-host attempt counts (blacklist counters),
    /// host-sorted.
    pub counts: Vec<(HostId, u32)>,
}

/// Everything a [`Session`] needs to continue from a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// The campaign configuration (shards, faults, retry, trace,
    /// incremental).
    pub builder: CampaignBuilder,
    /// Seed of the world the session ran against.
    pub world_seed: u64,
    /// Scale of the world the session ran against.
    pub world_scale: f64,
    /// Longitudinal rounds completed.
    pub rounds_done: usize,
    /// Simulated busy time of the initial sweep.
    pub initial_busy: SimDuration,
    /// Simulated busy time of the rounds so far.
    pub rounds_busy: SimDuration,
    /// Probe-volume counters so far.
    pub stats: SessionStats,
    /// Streaming sessions only: the initial sweep compressed to one
    /// [`HostMask`](crate::HostMask) per host (index = host id), written
    /// as a versioned `aggregate v1` section. When present, `initial`
    /// is empty — the masks are the sweep's record. Checkpoints without
    /// the section (every eager checkpoint, and every file written
    /// before the section existed) parse exactly as before.
    pub masks: Option<Vec<u32>>,
    /// The initial sweep's per-host results, host-sorted.
    pub initial: Vec<(HostId, HostInitialResult)>,
    /// Completed rounds: `(day, host-sorted statuses)`.
    pub rounds: Vec<(u16, Vec<(HostId, RoundStatus)>)>,
    /// Audit merged from already-retired workers.
    pub ethics_total: EthicsAudit,
    /// Network counters merged from already-retired workers.
    pub network_total: MetricsSnapshot,
    /// Sharded only: per-host attempt counts merged from the initial
    /// phase (consumed when round workers are created), host-sorted.
    pub merged_counts: Vec<(HostId, u32)>,
    /// The live workers' durable state, in shard order.
    pub workers: Vec<WorkerState>,
    /// Every trace record emitted so far (empty when tracing is off).
    pub trace_records: Vec<ProbeRecord>,
}

const MAGIC: &str = "spfail-checkpoint v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern {tok:?}"))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
    tok.parse()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

fn bool01(v: bool) -> &'static str {
    if v {
        "1"
    } else {
        "0"
    }
}

fn parse_bool01(tok: &str) -> Result<bool, String> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad flag {tok:?} (want 0 or 1)")),
    }
}

fn behavior_token(b: MacroBehavior) -> &'static str {
    match b {
        MacroBehavior::Compliant => "compliant",
        MacroBehavior::VulnerableLibSpf2 => "vulnerable_libspf2",
        MacroBehavior::PatchedLibSpf2 => "patched_libspf2",
        MacroBehavior::NoExpansion => "no_expansion",
        MacroBehavior::ReverseNoTruncate => "reverse_no_truncate",
        MacroBehavior::TruncateNoReverse => "truncate_no_reverse",
        MacroBehavior::IgnoreTransformers => "ignore_transformers",
        MacroBehavior::EmptyExpansion => "empty_expansion",
        MacroBehavior::MacroUnsupported => "macro_unsupported",
    }
}

fn parse_behavior(tok: &str) -> Result<MacroBehavior, String> {
    Ok(match tok {
        "compliant" => MacroBehavior::Compliant,
        "vulnerable_libspf2" => MacroBehavior::VulnerableLibSpf2,
        "patched_libspf2" => MacroBehavior::PatchedLibSpf2,
        "no_expansion" => MacroBehavior::NoExpansion,
        "reverse_no_truncate" => MacroBehavior::ReverseNoTruncate,
        "truncate_no_reverse" => MacroBehavior::TruncateNoReverse,
        "ignore_transformers" => MacroBehavior::IgnoreTransformers,
        "empty_expansion" => MacroBehavior::EmptyExpansion,
        "macro_unsupported" => MacroBehavior::MacroUnsupported,
        _ => return Err(format!("unknown macro behaviour {tok:?}")),
    })
}

fn transaction_token(t: &TransactionOutcome) -> String {
    match t {
        TransactionOutcome::RejectedAtConnect(c) => format!("connect:{c}"),
        TransactionOutcome::RejectedAtHello(c) => format!("hello:{c}"),
        TransactionOutcome::RejectedAtMailFrom(c) => format!("mailfrom:{c}"),
        TransactionOutcome::RejectedAtRcpt(c) => format!("rcpt:{c}"),
        TransactionOutcome::RejectedAtData(c) => format!("data:{c}"),
        TransactionOutcome::Transient { stage, code } => format!("transient:{stage}:{code}"),
        TransactionOutcome::ConnectionReset => "reset".to_string(),
        TransactionOutcome::NoMsgCompleted => "nomsg".to_string(),
        TransactionOutcome::MessageAccepted(c) => format!("accepted:{c}"),
        TransactionOutcome::MessageRejected(c) => format!("rejected:{c}"),
    }
}

fn parse_transaction(tok: &str) -> Result<TransactionOutcome, String> {
    let mut parts = tok.split(':');
    let head = parts.next().unwrap_or_default();
    let code = |p: Option<&str>| -> Result<u16, String> {
        parse_num(p.ok_or_else(|| format!("missing code in {tok:?}"))?, "code")
    };
    Ok(match head {
        "connect" => TransactionOutcome::RejectedAtConnect(code(parts.next())?),
        "hello" => TransactionOutcome::RejectedAtHello(code(parts.next())?),
        "mailfrom" => TransactionOutcome::RejectedAtMailFrom(code(parts.next())?),
        "rcpt" => TransactionOutcome::RejectedAtRcpt(code(parts.next())?),
        "data" => TransactionOutcome::RejectedAtData(code(parts.next())?),
        "transient" => {
            let stage = match parts.next() {
                // The stage is a `&'static str` in the outcome; intern
                // the known vocabulary.
                Some("connect") => "connect",
                Some("mail") => "mail",
                Some("rcpt") => "rcpt",
                Some("data") => "data",
                other => return Err(format!("unknown transient stage {other:?}")),
            };
            TransactionOutcome::Transient {
                stage,
                code: code(parts.next())?,
            }
        }
        "reset" => TransactionOutcome::ConnectionReset,
        "nomsg" => TransactionOutcome::NoMsgCompleted,
        "accepted" => TransactionOutcome::MessageAccepted(code(parts.next())?),
        "rejected" => TransactionOutcome::MessageRejected(code(parts.next())?),
        _ => return Err(format!("unknown transaction outcome {tok:?}")),
    })
}

fn dns_fault_token(e: &ProbeError) -> String {
    match e {
        ProbeError::DnsTimeout => "timeout".to_string(),
        ProbeError::DnsServFail => "servfail".to_string(),
        ProbeError::DnsLame => "lame".to_string(),
        ProbeError::ConnectRefused => "refused".to_string(),
        ProbeError::ConnectTimeout => "connect_timeout".to_string(),
        ProbeError::ConnectionReset => "reset".to_string(),
        ProbeError::SmtpTempFail(c) => format!("tempfail:{c}"),
        ProbeError::SmtpReject(c) => format!("reject:{c}"),
    }
}

fn parse_dns_fault(tok: &str) -> Result<ProbeError, String> {
    let (head, code) = match tok.split_once(':') {
        Some((h, c)) => (h, Some(c)),
        None => (tok, None),
    };
    let code = || -> Result<u16, String> {
        parse_num(code.ok_or_else(|| format!("missing code in {tok:?}"))?, "code")
    };
    Ok(match head {
        "timeout" => ProbeError::DnsTimeout,
        "servfail" => ProbeError::DnsServFail,
        "lame" => ProbeError::DnsLame,
        "refused" => ProbeError::ConnectRefused,
        "connect_timeout" => ProbeError::ConnectTimeout,
        "reset" => ProbeError::ConnectionReset,
        "tempfail" => ProbeError::SmtpTempFail(code()?),
        "reject" => ProbeError::SmtpReject(code()?),
        _ => return Err(format!("unknown probe error {tok:?}")),
    })
}

/// Serialise one probe outcome as six space-free tokens:
/// `id transaction spf_triggered behaviors unknown_patterns dns_fault`.
fn outcome_tokens(out: &mut String, o: &ProbeOutcome) {
    let behaviors = if o.classification.behaviors.is_empty() {
        "-".to_string()
    } else {
        o.classification
            .behaviors
            .iter()
            .map(|&b| behavior_token(b))
            .collect::<Vec<_>>()
            .join("+")
    };
    let _ = write!(
        out,
        "{} {} {} {} {} {}",
        escape_field(&o.id),
        o.transaction
            .as_ref()
            .map_or_else(|| "none".to_string(), transaction_token),
        bool01(o.classification.spf_triggered),
        behaviors,
        o.classification.unknown_patterns,
        o.dns_fault
            .as_ref()
            .map_or_else(|| "none".to_string(), dns_fault_token),
    );
}

fn parse_outcome(host: HostId, test: ProbeTest, toks: &[&str]) -> Result<ProbeOutcome, String> {
    let [id, txn, spf, behaviors, unknown, dns] = toks else {
        return Err(format!("probe outcome wants 6 tokens, got {}", toks.len()));
    };
    let behaviors: BTreeSet<MacroBehavior> = if *behaviors == "-" {
        BTreeSet::new()
    } else {
        behaviors
            .split('+')
            .map(parse_behavior)
            .collect::<Result<_, _>>()?
    };
    Ok(ProbeOutcome {
        host,
        test,
        id: unescape_field(id),
        transaction: match *txn {
            "none" => None,
            t => Some(parse_transaction(t)?),
        },
        classification: Classification {
            spf_triggered: parse_bool01(spf)?,
            behaviors,
            unknown_patterns: parse_num(unknown, "unknown_patterns")?,
        },
        dns_fault: match *dns {
            "none" => None,
            e => Some(parse_dns_fault(e)?),
        },
    })
}

fn status_token(s: RoundStatus) -> &'static str {
    match s {
        RoundStatus::Vulnerable => "v",
        RoundStatus::Patched => "p",
        RoundStatus::Inconclusive => "i",
    }
}

fn parse_status(tok: &str) -> Result<RoundStatus, String> {
    Ok(match tok {
        "v" => RoundStatus::Vulnerable,
        "p" => RoundStatus::Patched,
        "i" => RoundStatus::Inconclusive,
        _ => return Err(format!("unknown round status {tok:?}")),
    })
}

fn write_plan(out: &mut String, p: &FaultPlan) {
    let _ = write!(
        out,
        "{} {} {} {} {} {} {}",
        f64_hex(p.refuse_chance),
        f64_hex(p.abort_chance),
        f64_hex(p.drop_chance),
        f64_hex(p.servfail_chance),
        f64_hex(p.truncate_chance),
        f64_hex(p.tempfail_chance),
        f64_hex(p.reset_chance),
    );
}

fn parse_plan(toks: &[&str]) -> Result<FaultPlan, String> {
    let [refuse, abort, drop, servfail, truncate, tempfail, reset] = toks else {
        return Err(format!("fault plan wants 7 tokens, got {}", toks.len()));
    };
    Ok(FaultPlan {
        refuse_chance: parse_f64(refuse)?,
        abort_chance: parse_f64(abort)?,
        drop_chance: parse_f64(drop)?,
        servfail_chance: parse_f64(servfail)?,
        truncate_chance: parse_f64(truncate)?,
        tempfail_chance: parse_f64(tempfail)?,
        reset_chance: parse_f64(reset)?,
    })
}

fn metrics_fields(m: &MetricsSnapshot) -> [u64; 16] {
    [
        m.connections_attempted,
        m.connections_refused,
        m.connections_aborted,
        m.datagrams_sent,
        m.datagrams_dropped,
        m.bytes_sent,
        m.dns_queries,
        m.dns_cache_hits,
        m.dns_truncated,
        m.dns_timeouts,
        m.dns_servfails,
        m.smtp_tempfails,
        m.connection_resets,
        m.window_closed_probes,
        m.probe_retries,
        m.probes_recovered,
    ]
}

fn write_metrics(out: &mut String, m: &MetricsSnapshot) {
    let fields = metrics_fields(m);
    let joined = fields
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(" ");
    let _ = write!(out, "{joined}");
}

fn parse_metrics(toks: &[&str]) -> Result<MetricsSnapshot, String> {
    if toks.len() != 16 {
        return Err(format!("metrics want 16 counters, got {}", toks.len()));
    }
    let mut v = [0u64; 16];
    for (slot, tok) in v.iter_mut().zip(toks) {
        *slot = parse_num(tok, "counter")?;
    }
    Ok(MetricsSnapshot {
        connections_attempted: v[0],
        connections_refused: v[1],
        connections_aborted: v[2],
        datagrams_sent: v[3],
        datagrams_dropped: v[4],
        bytes_sent: v[5],
        dns_queries: v[6],
        dns_cache_hits: v[7],
        dns_truncated: v[8],
        dns_timeouts: v[9],
        dns_servfails: v[10],
        smtp_tempfails: v[11],
        connection_resets: v[12],
        window_closed_probes: v[13],
        probe_retries: v[14],
        probes_recovered: v[15],
    })
}

fn write_ethics(out: &mut String, a: &EthicsAudit) {
    let _ = write!(
        out,
        "{} {} {} {} {}",
        a.immediate, a.spaced, a.greylist_waits, a.dedup_suppressed, a.peak_concurrency
    );
}

fn parse_ethics(toks: &[&str]) -> Result<EthicsAudit, String> {
    let [immediate, spaced, greylist, dedup, peak] = toks else {
        return Err(format!("ethics audit wants 5 counters, got {}", toks.len()));
    };
    Ok(EthicsAudit {
        immediate: parse_num(immediate, "immediate")?,
        spaced: parse_num(spaced, "spaced")?,
        greylist_waits: parse_num(greylist, "greylist_waits")?,
        dedup_suppressed: parse_num(dedup, "dedup_suppressed")?,
        peak_concurrency: parse_num(peak, "peak_concurrency")?,
    })
}

impl CampaignState {
    /// Render the state into its canonical text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(
            out,
            "world {} {}",
            self.world_seed,
            f64_hex(self.world_scale)
        );
        let b = &self.builder;
        let _ = writeln!(
            out,
            "config {} {} {} {} {}",
            b.shards,
            bool01(b.timed),
            bool01(b.trace.enabled),
            bool01(b.incremental),
            bool01(b.no_policy_cache),
        );
        out.push_str("faults ");
        write_plan(&mut out, &b.options.faults.dns);
        out.push(' ');
        write_plan(&mut out, &b.options.faults.smtp);
        let _ = write!(out, " {}", f64_hex(b.options.faults.flaky_fraction));
        match &b.options.faults.window {
            Some(w) => {
                let _ = writeln!(
                    out,
                    " window {} {} {}",
                    w.period.as_micros(),
                    f64_hex(w.open_fraction),
                    w.phase.as_micros()
                );
            }
            None => out.push_str(" nowindow\n"),
        }
        let r = &b.options.retry;
        let _ = writeln!(
            out,
            "retry {} {} {} {} {}",
            r.max_attempts,
            r.base_backoff.as_micros(),
            r.max_backoff.as_micros(),
            f64_hex(r.jitter),
            r.deadline
                .map_or_else(|| "none".to_string(), |d| d.as_micros().to_string()),
        );
        let _ = writeln!(out, "progress {}", self.rounds_done);
        let _ = writeln!(
            out,
            "busy {} {}",
            self.initial_busy.as_micros(),
            self.rounds_busy.as_micros()
        );
        let _ = writeln!(
            out,
            "stats {} {}",
            self.stats.round_probes_issued, self.stats.round_probes_skipped
        );
        out.push_str("ethics-total ");
        write_ethics(&mut out, &self.ethics_total);
        out.push('\n');
        out.push_str("network-total ");
        write_metrics(&mut out, &self.network_total);
        out.push('\n');
        for (host, n) in &self.merged_counts {
            let _ = writeln!(out, "mcount {} {}", host.0, n);
        }
        for (host, result) in &self.initial {
            let _ = write!(out, "init {} ", host.0);
            outcome_tokens(&mut out, &result.nomsg);
            if let Some(blank) = &result.blankmsg {
                out.push(' ');
                outcome_tokens(&mut out, blank);
            }
            out.push('\n');
        }
        if let Some(masks) = &self.masks {
            // The versioned aggregate section: a declared host count,
            // then rows of up to 64 masks packed as fixed-width hex.
            let _ = writeln!(out, "aggregate v1 {}", masks.len());
            for (row, chunk) in masks.chunks(64).enumerate() {
                let _ = write!(out, "amask {}", row * 64);
                for m in chunk {
                    let _ = write!(out, " {m:08x}");
                }
                out.push('\n');
            }
        }
        for (day, statuses) in &self.rounds {
            let _ = writeln!(out, "round {day}");
            for (host, status) in statuses {
                let _ = writeln!(out, "st {} {}", host.0, status_token(*status));
            }
        }
        for w in &self.workers {
            let _ = writeln!(out, "worker");
            let _ = writeln!(out, "wclock {}", w.clock_micros);
            out.push_str("wethics ");
            write_ethics(&mut out, &w.ethics);
            out.push('\n');
            for (ip, at) in &w.contacts {
                let _ = writeln!(out, "wcontact {} {}", ip, at.as_micros());
            }
            out.push_str("wmetrics ");
            write_metrics(&mut out, &w.metrics);
            out.push('\n');
            for ((h, d, t, x), n) in &w.occurrences {
                let _ = writeln!(out, "wocc {h} {d} {t} {x} {n}");
            }
            for (host, n) in &w.counts {
                let _ = writeln!(out, "wcount {} {}", host.0, n);
            }
        }
        for record in &self.trace_records {
            let _ = writeln!(out, "trace {}", record.to_wire());
        }
        out
    }

    /// Parse the text form written by [`CampaignState::to_text`].
    pub fn parse(text: &str) -> Result<CampaignState, String> {
        let mut lines = text.lines().enumerate();
        let Some((_, first)) = lines.next() else {
            return Err("empty checkpoint".to_string());
        };
        if first != MAGIC {
            return Err(format!("not a checkpoint: first line {first:?}"));
        }
        let mut world: Option<(u64, f64)> = None;
        let mut config: Option<(usize, bool, bool, bool, bool)> = None;
        let mut faults: Option<FaultProfile> = None;
        let mut retry: Option<RetryPolicy> = None;
        let mut rounds_done: Option<usize> = None;
        let mut busy: Option<(SimDuration, SimDuration)> = None;
        let mut stats = SessionStats::default();
        let mut ethics_total = EthicsAudit::default();
        let mut network_total = MetricsSnapshot::default();
        let mut merged_counts = Vec::new();
        let mut masks: Option<(usize, Vec<u32>)> = None;
        let mut initial = Vec::new();
        let mut rounds: Vec<(u16, Vec<(HostId, RoundStatus)>)> = Vec::new();
        let mut workers: Vec<WorkerState> = Vec::new();
        let mut trace_records = Vec::new();
        for (idx, line) in lines {
            let err = |msg: String| format!("line {}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
            // `trace` operands carry their own escaping; everything else
            // splits on single spaces.
            if keyword == "trace" {
                trace_records.push(ProbeRecord::from_wire(rest).map_err(err)?);
                continue;
            }
            let toks: Vec<&str> = rest.split(' ').filter(|t| !t.is_empty()).collect();
            match keyword {
                "world" => {
                    let [seed, scale] = toks[..] else {
                        return Err(err("world wants seed and scale".to_string()));
                    };
                    world = Some((
                        parse_num(seed, "seed").map_err(err)?,
                        parse_f64(scale).map_err(err)?,
                    ));
                }
                "config" => {
                    let [shards, timed, trace, incremental, no_policy_cache] = toks[..] else {
                        return Err(err("config wants 5 flags".to_string()));
                    };
                    config = Some((
                        parse_num(shards, "shards").map_err(err)?,
                        parse_bool01(timed).map_err(err)?,
                        parse_bool01(trace).map_err(err)?,
                        parse_bool01(incremental).map_err(err)?,
                        parse_bool01(no_policy_cache).map_err(err)?,
                    ));
                }
                "faults" => {
                    if toks.len() < 16 {
                        return Err(err(format!("faults wants ≥16 tokens, got {}", toks.len())));
                    }
                    let dns = parse_plan(&toks[0..7]).map_err(err)?;
                    let smtp = parse_plan(&toks[7..14]).map_err(err)?;
                    let flaky_fraction = parse_f64(toks[14]).map_err(err)?;
                    let window = match toks[15] {
                        "nowindow" => None,
                        "window" => {
                            let [period, open, phase] = toks[16..] else {
                                return Err(err("window wants 3 operands".to_string()));
                            };
                            Some(FlakyWindow {
                                period: SimDuration::from_micros(
                                    parse_num(period, "period").map_err(err)?,
                                ),
                                open_fraction: parse_f64(open).map_err(err)?,
                                phase: SimDuration::from_micros(
                                    parse_num(phase, "phase").map_err(err)?,
                                ),
                            })
                        }
                        other => return Err(err(format!("unknown window form {other:?}"))),
                    };
                    faults = Some(FaultProfile {
                        dns,
                        smtp,
                        flaky_fraction,
                        window,
                    });
                }
                "retry" => {
                    let [attempts, base, max, jitter, deadline] = toks[..] else {
                        return Err(err("retry wants 5 operands".to_string()));
                    };
                    retry = Some(RetryPolicy {
                        max_attempts: parse_num(attempts, "max_attempts").map_err(err)?,
                        base_backoff: SimDuration::from_micros(
                            parse_num(base, "base_backoff").map_err(err)?,
                        ),
                        max_backoff: SimDuration::from_micros(
                            parse_num(max, "max_backoff").map_err(err)?,
                        ),
                        jitter: parse_f64(jitter).map_err(err)?,
                        deadline: match deadline {
                            "none" => None,
                            us => Some(SimDuration::from_micros(
                                parse_num(us, "deadline").map_err(err)?,
                            )),
                        },
                    });
                }
                "progress" => {
                    let [done] = toks[..] else {
                        return Err(err("progress wants 1 operand".to_string()));
                    };
                    rounds_done = Some(parse_num(done, "rounds_done").map_err(err)?);
                }
                "busy" => {
                    let [init, rnds] = toks[..] else {
                        return Err(err("busy wants 2 operands".to_string()));
                    };
                    busy = Some((
                        SimDuration::from_micros(parse_num(init, "initial_busy").map_err(err)?),
                        SimDuration::from_micros(parse_num(rnds, "rounds_busy").map_err(err)?),
                    ));
                }
                "stats" => {
                    let [issued, skipped] = toks[..] else {
                        return Err(err("stats wants 2 operands".to_string()));
                    };
                    stats = SessionStats {
                        round_probes_issued: parse_num(issued, "issued").map_err(err)?,
                        round_probes_skipped: parse_num(skipped, "skipped").map_err(err)?,
                    };
                }
                "ethics-total" => ethics_total = parse_ethics(&toks).map_err(err)?,
                "network-total" => network_total = parse_metrics(&toks).map_err(err)?,
                "mcount" => {
                    let [host, n] = toks[..] else {
                        return Err(err("mcount wants 2 operands".to_string()));
                    };
                    merged_counts.push((
                        HostId(parse_num(host, "host").map_err(err)?),
                        parse_num(n, "count").map_err(err)?,
                    ));
                }
                "init" => {
                    if toks.len() != 7 && toks.len() != 13 {
                        return Err(err(format!(
                            "init wants 7 or 13 tokens, got {}",
                            toks.len()
                        )));
                    }
                    let host = HostId(parse_num(toks[0], "host").map_err(err)?);
                    let nomsg =
                        parse_outcome(host, ProbeTest::NoMsg, &toks[1..7]).map_err(err)?;
                    let blankmsg = if toks.len() == 13 {
                        Some(
                            parse_outcome(host, ProbeTest::BlankMsg, &toks[7..13])
                                .map_err(err)?,
                        )
                    } else {
                        None
                    };
                    initial.push((host, HostInitialResult { nomsg, blankmsg }));
                }
                "aggregate" => {
                    let [version, count] = toks[..] else {
                        return Err(err("aggregate wants version and count".to_string()));
                    };
                    if version != "v1" {
                        return Err(err(format!("unknown aggregate version {version:?}")));
                    }
                    if masks.is_some() {
                        return Err(err("duplicate aggregate section".to_string()));
                    }
                    masks = Some((parse_num(count, "host count").map_err(err)?, Vec::new()));
                }
                "amask" => {
                    let Some((_, column)) = masks.as_mut() else {
                        return Err(err("amask before aggregate header".to_string()));
                    };
                    let [first, row @ ..] = &toks[..] else {
                        return Err(err("amask wants a first-host index".to_string()));
                    };
                    let first: usize = parse_num(first, "first host").map_err(err)?;
                    if first != column.len() {
                        return Err(err(format!(
                            "amask row starts at host {first}, expected {}",
                            column.len()
                        )));
                    }
                    for tok in row {
                        column.push(
                            u32::from_str_radix(tok, 16)
                                .map_err(|_| err(format!("bad mask {tok:?}")))?,
                        );
                    }
                }
                "round" => {
                    let [day] = toks[..] else {
                        return Err(err("round wants 1 operand".to_string()));
                    };
                    rounds.push((parse_num(day, "day").map_err(err)?, Vec::new()));
                }
                "st" => {
                    let [host, status] = toks[..] else {
                        return Err(err("st wants 2 operands".to_string()));
                    };
                    let Some((_, statuses)) = rounds.last_mut() else {
                        return Err(err("st before any round".to_string()));
                    };
                    statuses.push((
                        HostId(parse_num(host, "host").map_err(err)?),
                        parse_status(status).map_err(err)?,
                    ));
                }
                "worker" => workers.push(WorkerState {
                    clock_micros: 0,
                    ethics: EthicsAudit::default(),
                    contacts: Vec::new(),
                    metrics: MetricsSnapshot::default(),
                    occurrences: Vec::new(),
                    counts: Vec::new(),
                }),
                "wclock" | "wethics" | "wcontact" | "wmetrics" | "wocc" | "wcount" => {
                    let Some(w) = workers.last_mut() else {
                        return Err(err(format!("{keyword} before any worker")));
                    };
                    match keyword {
                        "wclock" => {
                            let [us] = toks[..] else {
                                return Err(err("wclock wants 1 operand".to_string()));
                            };
                            w.clock_micros = parse_num(us, "clock").map_err(err)?;
                        }
                        "wethics" => w.ethics = parse_ethics(&toks).map_err(err)?,
                        "wcontact" => {
                            let [ip, us] = toks[..] else {
                                return Err(err("wcontact wants 2 operands".to_string()));
                            };
                            w.contacts.push((
                                ip.parse()
                                    .map_err(|_| err(format!("bad address {ip:?}")))?,
                                SimTime::from_micros(parse_num(us, "contact").map_err(err)?),
                            ));
                        }
                        "wmetrics" => w.metrics = parse_metrics(&toks).map_err(err)?,
                        "wocc" => {
                            let [h, d, t, x, n] = toks[..] else {
                                return Err(err("wocc wants 5 operands".to_string()));
                            };
                            w.occurrences.push((
                                (
                                    parse_num(h, "host").map_err(err)?,
                                    parse_num(d, "day").map_err(err)?,
                                    parse_num(t, "test").map_err(err)?,
                                    parse_num(x, "extra").map_err(err)?,
                                ),
                                parse_num(n, "occurrence").map_err(err)?,
                            ));
                        }
                        "wcount" => {
                            let [host, n] = toks[..] else {
                                return Err(err("wcount wants 2 operands".to_string()));
                            };
                            w.counts.push((
                                HostId(parse_num(host, "host").map_err(err)?),
                                parse_num(n, "count").map_err(err)?,
                            ));
                        }
                        _ => unreachable!(),
                    }
                }
                _ => return Err(err(format!("unknown keyword {keyword:?}"))),
            }
        }
        let (world_seed, world_scale) = world.ok_or("missing world line")?;
        let (shards, timed, trace_enabled, incremental, no_policy_cache) =
            config.ok_or("missing config line")?;
        let builder = CampaignBuilder {
            shards,
            options: ProbeOptions {
                faults: faults.ok_or("missing faults line")?,
                retry: retry.ok_or("missing retry line")?,
            },
            timed,
            trace: TraceConfig {
                enabled: trace_enabled,
            },
            incremental,
            no_policy_cache,
            // An execution strategy, not measurement state: a resumed
            // campaign picks its own mode.
            streaming: false,
        };
        let (initial_busy, rounds_busy) = busy.ok_or("missing busy line")?;
        let masks = match masks {
            Some((declared, column)) => {
                if column.len() != declared {
                    return Err(format!(
                        "aggregate section declares {declared} hosts but carries {}",
                        column.len()
                    ));
                }
                Some(column)
            }
            None => None,
        };
        Ok(CampaignState {
            builder,
            world_seed,
            world_scale,
            rounds_done: rounds_done.ok_or("missing progress line")?,
            initial_busy,
            rounds_busy,
            stats,
            masks,
            initial,
            rounds,
            ethics_total,
            network_total,
            merged_counts,
            workers,
            trace_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_netsim::SimDuration;
    use spfail_trace::{Phase, TraceEvent, TraceEventKind};

    fn sample_outcome(host: u32, vulnerable: bool) -> ProbeOutcome {
        let mut behaviors = BTreeSet::new();
        if vulnerable {
            behaviors.insert(MacroBehavior::VulnerableLibSpf2);
            behaviors.insert(MacroBehavior::Compliant);
        }
        ProbeOutcome {
            host: HostId(host),
            test: ProbeTest::NoMsg,
            id: "ab3x".to_string(),
            transaction: Some(TransactionOutcome::NoMsgCompleted),
            classification: Classification {
                spf_triggered: vulnerable,
                behaviors,
                unknown_patterns: 1,
            },
            dns_fault: vulnerable.then_some(ProbeError::SmtpTempFail(451)),
        }
    }

    fn sample_state() -> CampaignState {
        let record = ProbeRecord {
            phase: Phase::Round(17),
            host: 9,
            day: 17,
            test: 1,
            extra: 2,
            seq: 0,
            duration_us: 830,
            events: vec![TraceEvent {
                at_us: 3,
                kind: TraceEventKind::Enter {
                    span: spfail_trace::SpanKind::SmtpSession,
                    label: Some("weird =label".to_string()),
                },
            }],
        };
        CampaignState {
            builder: CampaignBuilder {
                shards: 4,
                options: ProbeOptions {
                    faults: FaultProfile {
                        dns: FaultPlan {
                            drop_chance: 0.05,
                            ..FaultPlan::NONE
                        },
                        smtp: FaultPlan::NONE,
                        flaky_fraction: 0.2,
                        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
                    },
                    retry: RetryPolicy::standard(),
                },
                timed: true,
                trace: TraceConfig { enabled: true },
                incremental: true,
                no_policy_cache: true,
                streaming: false,
            },
            world_seed: 2024,
            world_scale: 0.004,
            rounds_done: 2,
            initial_busy: SimDuration::from_secs(7),
            rounds_busy: SimDuration::from_secs(3),
            stats: SessionStats {
                round_probes_issued: 11,
                round_probes_skipped: 44,
            },
            masks: None,
            initial: vec![
                (
                    HostId(3),
                    HostInitialResult {
                        nomsg: sample_outcome(3, true),
                        blankmsg: None,
                    },
                ),
                (
                    HostId(9),
                    HostInitialResult {
                        nomsg: sample_outcome(9, false),
                        blankmsg: Some(ProbeOutcome {
                            test: ProbeTest::BlankMsg,
                            ..sample_outcome(9, true)
                        }),
                    },
                ),
            ],
            rounds: vec![
                (15, vec![(HostId(3), RoundStatus::Vulnerable)]),
                (
                    17,
                    vec![
                        (HostId(3), RoundStatus::Patched),
                        (HostId(9), RoundStatus::Inconclusive),
                    ],
                ),
            ],
            ethics_total: EthicsAudit {
                immediate: 5,
                spaced: 2,
                greylist_waits: 1,
                dedup_suppressed: 0,
                peak_concurrency: 3,
            },
            network_total: MetricsSnapshot {
                dns_queries: 120,
                bytes_sent: 4096,
                ..MetricsSnapshot::default()
            },
            merged_counts: vec![(HostId(3), 2), (HostId(9), 3)],
            workers: vec![WorkerState {
                clock_micros: 1_296_000_000_000,
                ethics: EthicsAudit {
                    immediate: 4,
                    ..EthicsAudit::default()
                },
                contacts: vec![(
                    "192.0.2.7".parse().unwrap(),
                    SimTime::from_micros(1_295_999_000_000),
                )],
                metrics: MetricsSnapshot {
                    connections_attempted: 9,
                    ..MetricsSnapshot::default()
                },
                occurrences: vec![((3, 15, 0, 2), 1)],
                counts: vec![(HostId(3), 3)],
            }],
            trace_records: vec![record],
        }
    }

    /// The text form round-trips the whole state exactly — floats by
    /// bit pattern, labels through their escaping.
    #[test]
    fn state_round_trips_exactly() {
        let state = sample_state();
        let text = state.to_text();
        let parsed = CampaignState::parse(&text).expect("parses");
        assert_eq!(parsed, state);
        // And the canonical text form is a fixed point.
        assert_eq!(parsed.to_text(), text);
    }

    /// A streamed state carries its sweep as the `aggregate v1` section
    /// (no init lines) and round-trips just like the eager form.
    #[test]
    fn aggregate_section_round_trips_exactly() {
        let mut state = sample_state();
        state.initial.clear();
        // More than one packed row, with high bits set.
        state.masks = Some((0..150u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect());
        let text = state.to_text();
        assert!(text.contains("aggregate v1 150\n"));
        assert!(text.contains("amask 0 "));
        assert!(text.contains("amask 64 "));
        assert!(text.contains("amask 128 "));
        let parsed = CampaignState::parse(&text).expect("parses");
        assert_eq!(parsed, state);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn truncated_aggregate_sections_are_rejected() {
        let mut state = sample_state();
        state.initial.clear();
        state.masks = Some(vec![0x0001_0000; 70]);
        let text = state.to_text();
        // Drop the second mask row: the declared count no longer matches.
        let truncated = text
            .lines()
            .filter(|l| !l.starts_with("amask 64"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(CampaignState::parse(&truncated).is_err());
        // An orphan mask row (no header) is rejected too.
        let headerless = text
            .lines()
            .filter(|l| !l.starts_with("aggregate "))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(CampaignState::parse(&headerless).is_err());
    }

    #[test]
    fn corrupted_checkpoints_are_rejected() {
        assert!(CampaignState::parse("").is_err());
        assert!(CampaignState::parse("not a checkpoint\n").is_err());
        let text = sample_state().to_text();
        let mangled = text.replace("retry ", "retry bogus ");
        assert!(CampaignState::parse(&mangled).is_err());
        // Keep the magic line but drop the config one.
        let truncated = text
            .lines()
            .filter(|l| !l.starts_with("config"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(CampaignState::parse(&truncated).is_err());
    }
}
