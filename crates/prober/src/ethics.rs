//! The measurement's self-imposed restraints (paper §6.1–§6.3).
//!
//! * duplicate IP addresses are only tested once per sweep;
//! * at most 250 SMTP connections are outstanding at any instant;
//! * consecutive connections to the same address (or to addresses of the
//!   same email domain) wait at least 90 seconds;
//! * a greylisted server is retried only after 8 minutes;
//! * one SMTP connection per email domain at a time (sequential testing).
//!
//! The simulation is single-threaded, so "concurrency" is modelled as a
//! budget of overlapping connection slots: the guard timestamps each
//! contact and enforces the spacing rules against the shared clock,
//! advancing it when a wait is required. All decisions are recorded so
//! tests (and the ethics section of the report) can audit them.

use std::collections::HashMap;
use std::net::IpAddr;

use spfail_netsim::{SimClock, SimDuration, SimTime};

/// Spacing constants from §6.1.
pub const MIN_RECONTACT: SimDuration = SimDuration::from_secs(90);
/// Wait before retrying a greylisting server.
pub const GREYLIST_WAIT: SimDuration = SimDuration::from_mins(8);
/// Hard cap on concurrent outgoing SMTP connections.
pub const MAX_CONCURRENT: usize = 250;

/// Audit counters for one sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EthicsAudit {
    /// Contacts admitted without waiting.
    pub immediate: u64,
    /// Contacts that had to wait for the 90-second spacing.
    pub spaced: u64,
    /// Greylist retries (each waited 8 minutes).
    pub greylist_waits: u64,
    /// Duplicate-IP probes suppressed.
    pub dedup_suppressed: u64,
    /// Maximum concurrent connections observed.
    pub peak_concurrency: usize,
}

impl EthicsAudit {
    /// Combine the audits of two workers that probed disjoint host sets.
    ///
    /// Waits and admissions simply add; concurrency peaks can coincide,
    /// so the combined peak is the maximum (a safe over-approximation
    /// equals the sum, but each worker's slots are carved out of the
    /// shared [`MAX_CONCURRENT`] budget, so peaks never alias).
    #[must_use]
    pub fn merge(&self, other: &EthicsAudit) -> EthicsAudit {
        EthicsAudit {
            immediate: self.immediate + other.immediate,
            spaced: self.spaced + other.spaced,
            greylist_waits: self.greylist_waits + other.greylist_waits,
            dedup_suppressed: self.dedup_suppressed + other.dedup_suppressed,
            peak_concurrency: self.peak_concurrency.max(other.peak_concurrency),
        }
    }
}

/// Enforces the measurement ethics rules.
pub struct EthicsGuard {
    clock: SimClock,
    last_contact: HashMap<IpAddr, SimTime>,
    tested_this_sweep: HashMap<IpAddr, ()>,
    in_flight: usize,
    max_concurrent: usize,
    audit: EthicsAudit,
}

impl EthicsGuard {
    /// A new guard against the shared clock, with the full §6.1 budget.
    pub fn new(clock: SimClock) -> EthicsGuard {
        EthicsGuard::with_budget(clock, MAX_CONCURRENT)
    }

    /// A guard holding only `max_concurrent` of the campaign-wide
    /// connection budget — shard workers split [`MAX_CONCURRENT`]
    /// between them so the fleet never exceeds the paper's cap.
    pub fn with_budget(clock: SimClock, max_concurrent: usize) -> EthicsGuard {
        EthicsGuard {
            clock,
            last_contact: HashMap::new(),
            tested_this_sweep: HashMap::new(),
            in_flight: 0,
            max_concurrent: max_concurrent.clamp(1, MAX_CONCURRENT),
            audit: EthicsAudit::default(),
        }
    }

    /// Begin a new sweep: duplicate-suppression state resets, contact
    /// spacing does not.
    pub fn begin_sweep(&mut self) {
        self.tested_this_sweep.clear();
    }

    /// Whether `ip` was already tested this sweep. Records the suppression
    /// when it was.
    pub fn already_tested(&mut self, ip: IpAddr) -> bool {
        if self.tested_this_sweep.contains_key(&ip) {
            self.audit.dedup_suppressed += 1;
            true
        } else {
            false
        }
    }

    /// Admit a contact to `ip`: waits out the 90-second spacing if the
    /// address was contacted recently, takes a concurrency slot, and
    /// marks the address tested for this sweep.
    pub fn admit(&mut self, ip: IpAddr) {
        let now = self.clock.now();
        if let Some(&last) = self.last_contact.get(&ip) {
            let since = now.since(last);
            if since < MIN_RECONTACT {
                self.clock.advance(MIN_RECONTACT.saturating_sub(since));
                self.audit.spaced += 1;
            } else {
                self.audit.immediate += 1;
            }
        } else {
            self.audit.immediate += 1;
        }
        // The sequential simulation never truly overlaps connections; the
        // slot accounting documents the cap and trips if logic ever tries
        // to exceed it.
        assert!(
            self.in_flight < self.max_concurrent,
            "concurrency budget exceeded: the prober must throttle"
        );
        self.in_flight += 1;
        self.audit.peak_concurrency = self.audit.peak_concurrency.max(self.in_flight);
        self.last_contact.insert(ip, self.clock.now());
        self.tested_this_sweep.insert(ip, ());
    }

    /// Whether at least one admitted contact currently holds a
    /// concurrency slot. Inner transaction code asserts this so no SMTP
    /// traffic can be emitted outside an `admit`/`release` bracket.
    pub fn holds_slot(&self) -> bool {
        self.in_flight > 0
    }

    /// Release the concurrency slot when the connection ends.
    pub fn release(&mut self, ip: IpAddr) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.last_contact.insert(ip, self.clock.now());
    }

    /// Wait out the greylist period before retrying `ip`.
    pub fn greylist_wait(&mut self, _ip: IpAddr) {
        self.clock.advance(GREYLIST_WAIT);
        self.audit.greylist_waits += 1;
    }

    /// The audit counters.
    pub fn audit(&self) -> &EthicsAudit {
        &self.audit
    }

    /// Export the guard's durable state for a checkpoint: the audit plus
    /// the per-address contact history, in address order.
    ///
    /// At a round boundary these are the *only* live facts — every
    /// connection slot has been released and the sweep's dedup set is
    /// about to be cleared by the next `begin_sweep`, so `in_flight` and
    /// `tested_this_sweep` need no representation.
    pub fn export(&self) -> (EthicsAudit, Vec<(IpAddr, SimTime)>) {
        let mut contacts: Vec<(IpAddr, SimTime)> =
            self.last_contact.iter().map(|(&ip, &at)| (ip, at)).collect();
        contacts.sort();
        (self.audit.clone(), contacts)
    }

    /// Restore the durable state written by [`EthicsGuard::export`],
    /// replacing this guard's audit and contact history.
    pub fn restore(&mut self, audit: EthicsAudit, contacts: Vec<(IpAddr, SimTime)>) {
        self.audit = audit;
        self.last_contact = contacts.into_iter().collect();
        self.tested_this_sweep.clear();
        self.in_flight = 0;
    }

    /// Drop the contact history of every address not in `keep` (sorted).
    /// Sound only when the dropped addresses will never be contacted
    /// again by this guard: the contact history only influences spacing
    /// decisions for repeat contacts, so forgetting one-shot addresses
    /// is invisible. The audit counters are untouched.
    pub fn contacts_retain(&mut self, keep: &[IpAddr]) {
        self.last_contact
            .retain(|ip, _| keep.binary_search(ip).is_ok());
        self.tested_this_sweep
            .retain(|ip, _| keep.binary_search(ip).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::new(192, 0, 2, last))
    }

    #[test]
    fn first_contact_is_immediate() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock.clone());
        guard.admit(ip(1));
        guard.release(ip(1));
        assert_eq!(guard.audit().immediate, 1);
        assert_eq!(clock.now(), SimTime::EPOCH);
    }

    #[test]
    fn recontact_waits_ninety_seconds() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock.clone());
        guard.admit(ip(1));
        guard.release(ip(1));
        guard.admit(ip(1));
        assert_eq!(guard.audit().spaced, 1);
        assert!(clock.now().since(SimTime::EPOCH) >= MIN_RECONTACT);
    }

    #[test]
    fn recontact_after_long_gap_is_immediate() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock.clone());
        guard.admit(ip(1));
        guard.release(ip(1));
        clock.advance(SimDuration::from_secs(120));
        guard.admit(ip(1));
        assert_eq!(guard.audit().spaced, 0);
        assert_eq!(guard.audit().immediate, 2);
    }

    #[test]
    fn dedup_within_sweep_resets_between_sweeps() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock);
        guard.begin_sweep();
        assert!(!guard.already_tested(ip(5)));
        guard.admit(ip(5));
        guard.release(ip(5));
        assert!(guard.already_tested(ip(5)));
        assert_eq!(guard.audit().dedup_suppressed, 1);
        guard.begin_sweep();
        assert!(!guard.already_tested(ip(5)));
    }

    #[test]
    fn greylist_wait_advances_eight_minutes() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock.clone());
        guard.greylist_wait(ip(9));
        assert_eq!(clock.now().as_secs(), 480);
        assert_eq!(guard.audit().greylist_waits, 1);
    }

    /// Export → restore onto a fresh guard reproduces both the audit and
    /// the spacing behaviour: a recontact inside the 90-second window
    /// still waits after the round-trip.
    #[test]
    fn export_restore_preserves_spacing_and_audit() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock.clone());
        guard.begin_sweep();
        guard.admit(ip(1));
        guard.release(ip(1));
        guard.admit(ip(2));
        guard.release(ip(2));
        guard.admit(ip(1)); // spaced
        guard.release(ip(1));
        let (audit, contacts) = guard.export();
        assert_eq!(contacts.len(), 2);
        assert!(contacts.windows(2).all(|w| w[0].0 < w[1].0), "sorted");

        let mut restored = EthicsGuard::new(clock.clone());
        restored.restore(audit.clone(), contacts);
        assert_eq!(restored.audit(), &audit);
        restored.begin_sweep();
        // ip(1)'s last contact was refreshed when its spaced connection
        // released, so recontacting it immediately must wait again.
        let before = clock.now();
        restored.admit(ip(1));
        assert_eq!(restored.audit().spaced, audit.spaced + 1);
        assert!(clock.now().since(before) > SimDuration::ZERO);
    }

    #[test]
    fn concurrency_is_tracked() {
        let clock = SimClock::new();
        let mut guard = EthicsGuard::new(clock);
        for i in 0..100 {
            guard.admit(ip(i));
        }
        assert_eq!(guard.audit().peak_concurrency, 100);
        for i in 0..100 {
            guard.release(ip(i));
        }
        guard.admit(ip(200));
        assert_eq!(guard.audit().peak_concurrency, 100);
    }
}
