//! The measurement system: remote, benign vulnerability detection at
//! Internet scale (paper §4.2 and §5).
//!
//! The probe protocol per server:
//!
//! 1. open an SMTP connection and advertise a `MAIL FROM` whose domain is
//!    a unique subdomain of the measurement zone
//!    (`<id>.<suite>.spf-test.dns-lab.org`);
//! 2. run the **NoMsg** variant first (abort before any message bytes);
//!    if it fails to elicit SPF activity, follow with **BlankMsg** (an
//!    entirely empty message);
//! 3. read the measurement zone's DNS query log and classify the server's
//!    SPF implementation from the *shape* of the queries it sent.
//!
//! Modules:
//!
//! * [`mod@classify`] — query-shape → [`spfail_libspf2::MacroBehavior`].
//! * [`ethics`] — the §6.1 self-restraints: IP dedup, ≤250 concurrent
//!   connections, 90-second per-host spacing, 8-minute greylist waits.
//! * [`probe`] — drive one SMTP transaction against one host.
//! * [`campaign`] — the full measurement programme: the initial sweep,
//!   the every-2-days longitudinal rounds across both windows, the final
//!   re-resolving snapshot, and the §7.6 inference rules.
//! * [`session`] — the staged longitudinal engine behind
//!   [`CampaignBuilder::run`]: explicit `initial_sweep` / `advance_round`
//!   / `finish` stages, checkpoint/resume at round boundaries, and the
//!   incremental re-probing mode.
//! * [`checkpoint`] — the serialisable [`checkpoint::CampaignState`]
//!   and its text form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod checkpoint;
pub mod classify;
pub mod ethics;
pub mod probe;
pub mod session;
pub mod streaming;

pub use aggregate::{CampaignSummary, HostMask, OnlineAggregate, BEHAVIOR_BITS, SERIES_BUCKETS};
pub use campaign::{
    partition_hosts, shard_of, CampaignBuilder, CampaignData, CampaignRun,
    CampaignTiming, HostClass, HostInitialResult, InitialMeasurement, RoundStatus,
    SnapshotStatus,
};
pub use checkpoint::{CampaignState, WorkerState};
pub use classify::{
    classify, quirk_by_name, quirks_for_behavior, Classification, KnownQuirk, KNOWN_QUIRKS,
};
pub use ethics::{EthicsAudit, EthicsGuard};
pub use probe::{
    ProbeContext, ProbeOptions, ProbeOutcome, ProbeTest, ProbeVerdict, Prober, RetryPolicy,
    CONNECT_TIMEOUT,
};
pub use session::{Session, SessionStats};
pub use streaming::{StreamedCampaign, StreamingRun};
pub use spfail_trace::{Trace, TraceConfig, Tracer};
