//! The full measurement programme (paper §5.3):
//!
//! * **Initial sweep** (day 0, 2021-10-11): every unique server address of
//!   both domain sets, NoMsg first, BlankMsg where NoMsg elicited no SPF.
//! * **Longitudinal rounds** every 2 days across two windows
//!   (Oct 26 – Nov 30 and Jan 15 – Feb 14), restricted to the initially
//!   vulnerable and the inconclusive-but-remeasurable addresses.
//! * **Final snapshot** (February 2022) with freshly resolved MX records.
//! * The §7.6 **inference rules**: a host measured vulnerable at time *t*
//!   was vulnerable at all *t' ≤ t*; one measured patched at *t* stays
//!   patched for all *t' ≥ t*.

use std::collections::HashMap;

use spfail_netsim::{FaultProfile, MetricsSnapshot, PolicyCacheStats, SimDuration};
use spfail_trace::{Phase, Trace, TraceConfig};
use spfail_world::{DomainId, HostId, Population, Timeline, World};

use crate::classify::Classification;
use crate::ethics::EthicsAudit;
use crate::probe::{
    ProbeOptions, ProbeOutcome, ProbeTest, ProbeVerdict, Prober, RetryPolicy,
};

/// Which shard a host belongs to when the campaign is split `shards` ways.
///
/// The key is the host id itself, so the partition depends only on the
/// host set and the shard count — never on thread scheduling — and a
/// host keeps all of its probes (and therefore its blacklisting counter
/// and contact-spacing history) on a single worker.
pub fn shard_of(host: HostId, shards: usize) -> usize {
    host.0 as usize % shards.max(1)
}

/// Partition `hosts` into `shards` deterministic groups by [`shard_of`],
/// preserving the input order within each group.
pub fn partition_hosts(hosts: &[HostId], shards: usize) -> Vec<Vec<HostId>> {
    let shards = shards.max(1);
    let mut parts = vec![Vec::new(); shards];
    for &host in hosts {
        parts[shard_of(host, shards)].push(host);
    }
    parts
}

/// Table 3's per-address outcome ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostClass {
    /// TCP refused.
    Refused,
    /// SMTP failed before the probe ran its course, in every test tried.
    SmtpFailure,
    /// SPF behaviour conclusively measured.
    SpfMeasured,
    /// Transactions completed but no SPF activity was observed.
    SpfNotMeasured,
}

/// Both initial probes of one host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInitialResult {
    /// The NoMsg probe (always attempted).
    pub nomsg: ProbeOutcome,
    /// The BlankMsg probe, when the NoMsg result warranted one.
    pub blankmsg: Option<ProbeOutcome>,
}

impl HostInitialResult {
    /// The conclusive classification, from whichever test produced one.
    pub fn classification(&self) -> Option<&Classification> {
        if self.nomsg.spf_measured() {
            return Some(&self.nomsg.classification);
        }
        self.blankmsg
            .as_ref()
            .filter(|b| b.spf_measured())
            .map(|b| &b.classification)
    }

    /// The probe variant that produced the conclusive measurement.
    pub fn measured_by(&self) -> Option<ProbeTest> {
        if self.nomsg.spf_measured() {
            Some(ProbeTest::NoMsg)
        } else if self.blankmsg.as_ref().is_some_and(|b| b.spf_measured()) {
            Some(ProbeTest::BlankMsg)
        } else {
            None
        }
    }

    /// Whether the vulnerable fingerprint was observed in either test.
    pub fn vulnerable(&self) -> bool {
        self.classification().is_some_and(Classification::vulnerable)
    }

    /// Whether any probe ended in a transient failure (re-measurable).
    pub fn transient(&self) -> bool {
        let t = |p: &ProbeOutcome| {
            p.transaction
                .as_ref()
                .is_some_and(|o| o.is_transient())
        };
        t(&self.nomsg) || self.blankmsg.as_ref().is_some_and(t)
    }

    /// The Table 3 outcome class.
    pub fn class(&self) -> HostClass {
        if self.classification().is_some() {
            return HostClass::SpfMeasured;
        }
        if self.nomsg.refused() {
            return HostClass::Refused;
        }
        let failed = |p: &ProbeOutcome| p.smtp_failure();
        match &self.blankmsg {
            Some(blank) => {
                if failed(&self.nomsg) || failed(blank) {
                    HostClass::SmtpFailure
                } else {
                    HostClass::SpfNotMeasured
                }
            }
            None => {
                if failed(&self.nomsg) {
                    HostClass::SmtpFailure
                } else {
                    HostClass::SpfNotMeasured
                }
            }
        }
    }
}

/// The initial sweep's results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InitialMeasurement {
    /// Per-host results (every unique address probed once).
    pub results: HashMap<HostId, HostInitialResult>,
}

impl InitialMeasurement {
    /// Hosts whose initial measurement showed the vulnerable fingerprint.
    pub fn vulnerable_hosts(&self) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = self
            .results
            .iter()
            .filter(|(_, r)| r.vulnerable())
            .map(|(&h, _)| h)
            .collect();
        hosts.sort();
        hosts
    }
}

/// A host's status in one longitudinal round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundStatus {
    /// Measured with the vulnerable fingerprint.
    Vulnerable,
    /// Measured with a non-vulnerable (typically compliant) fingerprint.
    Patched,
    /// No conclusive measurement this round.
    Inconclusive,
}

/// A domain's status in the final snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotStatus {
    /// All of the domain's initially vulnerable hosts measured patched.
    Patched,
    /// At least one still measured vulnerable.
    Vulnerable,
    /// Never conclusively measured in February.
    Unknown,
}

/// Everything the campaign measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignData {
    /// The initial sweep.
    pub initial: InitialMeasurement,
    /// Hosts tracked longitudinally (initially vulnerable + transient).
    pub tracked: Vec<HostId>,
    /// Per-round measurements: `(day, host -> status)`.
    pub rounds: Vec<(u16, HashMap<HostId, RoundStatus>)>,
    /// The final snapshot, per initially-vulnerable domain.
    pub snapshot: HashMap<DomainId, SnapshotStatus>,
    /// Initially vulnerable domains (any vulnerable host).
    pub vulnerable_domains: Vec<DomainId>,
    /// The §6.1 self-restraint audit for the whole campaign.
    pub ethics: EthicsAudit,
    /// Network-layer counters for the whole campaign: DNS queries and
    /// faults, injected SMTP faults, retries and recoveries. Shard
    /// snapshots merge commutatively, so this too is identical across
    /// shard counts.
    pub network: MetricsSnapshot,
}

impl CampaignData {
    /// First round day a host was measured `Patched`, if ever.
    pub fn first_patched_day(&self, host: HostId) -> Option<u16> {
        self.rounds
            .iter()
            .find(|(_, statuses)| statuses.get(&host) == Some(&RoundStatus::Patched))
            .map(|(day, _)| *day)
    }

    /// Last round day a host was measured `Vulnerable`, if ever.
    pub fn last_vulnerable_day(&self, host: HostId) -> Option<u16> {
        self.rounds
            .iter()
            .rev()
            .find(|(_, statuses)| statuses.get(&host) == Some(&RoundStatus::Vulnerable))
            .map(|(day, _)| *day)
    }

    /// A host's status on `day` after applying the inference rules.
    pub fn inferred_status(&self, host: HostId, day: u16) -> RoundStatus {
        // Direct measurement wins.
        if let Some((_, statuses)) = self.rounds.iter().find(|(d, _)| *d == day) {
            match statuses.get(&host) {
                Some(&RoundStatus::Vulnerable) => return RoundStatus::Vulnerable,
                Some(&RoundStatus::Patched) => return RoundStatus::Patched,
                _ => {}
            }
        }
        // Rule 1: vulnerable later => vulnerable now (no regressions).
        if self.last_vulnerable_day(host).is_some_and(|d| d >= day) {
            return RoundStatus::Vulnerable;
        }
        // Rule 2: patched earlier => patched now.
        if self.first_patched_day(host).is_some_and(|d| d <= day) {
            return RoundStatus::Patched;
        }
        RoundStatus::Inconclusive
    }

    /// A domain's status on `day` (with inference): vulnerable while any
    /// initially-vulnerable host remains vulnerable; patched once all are.
    pub fn domain_status(&self, world: &dyn Population, domain: DomainId, day: u16) -> RoundStatus {
        let vulnerable_hosts: Vec<HostId> = world
            .domain(domain)
            .hosts
            .iter()
            .copied()
            .filter(|h| self.tracked.contains(h))
            .collect();
        if vulnerable_hosts.is_empty() {
            return RoundStatus::Inconclusive;
        }
        let mut all_patched = true;
        for host in vulnerable_hosts {
            match self.inferred_status(host, day) {
                RoundStatus::Vulnerable => return RoundStatus::Vulnerable,
                RoundStatus::Patched => {}
                RoundStatus::Inconclusive => all_patched = false,
            }
        }
        if all_patched {
            RoundStatus::Patched
        } else {
            RoundStatus::Inconclusive
        }
    }
}

/// Simulated probing time per campaign phase.
///
/// Wall-clock numbers on one machine mostly measure the scheduler; the
/// quantity sharding actually improves is how long the campaign keeps
/// probers busy in *simulated* time — connection latency, SMTP
/// round trips, contact-spacing waits, greylist retries. The sequential
/// engine serialises every probe on one clock, so a sweep costs the sum
/// of its probes; a sharded sweep costs only its busiest shard. The
/// `scaling` benchmark reports the resulting speedup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTiming {
    /// Busy time of the initial sweep.
    pub initial: SimDuration,
    /// Busy time of all longitudinal rounds combined.
    pub rounds: SimDuration,
    /// Busy time of the final snapshot.
    pub snapshot: SimDuration,
}

impl CampaignTiming {
    /// Total simulated probing time across all phases.
    pub fn total(&self) -> SimDuration {
        self.initial + self.rounds + self.snapshot
    }
}

/// Everything one campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The campaign's measurements.
    pub data: CampaignData,
    /// The mode-independent comparison surface: initial results as
    /// [`HostMask`](crate::HostMask)s plus the longitudinal fields.
    /// Streaming and eager runs of the same configuration produce equal
    /// summaries bit for bit (`tests/streaming_equivalence.rs`); like
    /// `cache`, it is derived bookkeeping and excluded from run equality
    /// (`data.initial` already carries the same information eagerly).
    pub summary: crate::CampaignSummary,
    /// Per-phase simulated busy time, when requested with
    /// [`CampaignBuilder::timed`].
    pub timing: Option<CampaignTiming>,
    /// The campaign's structured trace, when requested with
    /// [`CampaignBuilder::trace`]. Identity-ordered, so identical for
    /// every shard count — `tests/trace_equivalence.rs` asserts
    /// byte-for-byte equality of its exported forms.
    pub trace: Option<Trace>,
    /// Compiled-policy cache tallies summed over every worker, `None`
    /// when the cache was disabled with
    /// [`CampaignBuilder::policy_cache`].
    pub cache: Option<PolicyCacheStats>,
}

/// Cache tallies are bookkeeping about *how* evaluations were answered,
/// not *what* was measured, so they are excluded from run equality: a
/// cached run equals its interpretive twin.
impl PartialEq for CampaignRun {
    fn eq(&self, other: &CampaignRun) -> bool {
        self.data == other.data && self.timing == other.timing && self.trace == other.trace
    }
}

/// The one way to configure and run a measurement campaign.
///
/// Every axis is a named builder method and the defaults reproduce the
/// reference sequential engine exactly.
///
/// ```
/// use spfail_netsim::FaultProfile;
/// use spfail_prober::{CampaignBuilder, RetryPolicy};
/// use spfail_world::{World, WorldConfig};
///
/// let world = World::generate(WorldConfig {
///     scale: 0.002,
///     ..WorldConfig::small(7)
/// });
/// let run = CampaignBuilder::new()
///     .shards(4)
///     .faults(FaultProfile::NONE)
///     .retry(RetryPolicy::standard())
///     .timed()
///     .run(&world);
/// assert!(run.timing.is_some());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignBuilder {
    pub(crate) shards: usize,
    pub(crate) options: ProbeOptions,
    pub(crate) timed: bool,
    pub(crate) trace: TraceConfig,
    pub(crate) incremental: bool,
    /// Inverted so the zero-value default keeps the cache *on*.
    pub(crate) no_policy_cache: bool,
    /// Streaming is an execution strategy, not measurement state: it is
    /// never checkpointed, and a resumed campaign may run in either mode.
    pub(crate) streaming: bool,
}

impl CampaignBuilder {
    /// A sequential, fault-free, no-retry, untimed campaign — the
    /// reference configuration.
    pub fn new() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// Split the campaign across `shards` parallel workers (0 and 1
    /// both mean sequential). Any shard count produces bit-for-bit the
    /// data of the sequential engine, under any fault profile.
    pub fn shards(mut self, shards: usize) -> CampaignBuilder {
        self.shards = shards;
        self
    }

    /// Inject network faults from `profile` into every probe.
    pub fn faults(mut self, profile: FaultProfile) -> CampaignBuilder {
        self.options.faults = profile;
        self
    }

    /// Answer transient probe failures with `policy` retries.
    pub fn retry(mut self, policy: RetryPolicy) -> CampaignBuilder {
        self.options.retry = policy;
        self
    }

    /// Also report per-phase simulated busy time in
    /// [`CampaignRun::timing`].
    pub fn timed(mut self) -> CampaignBuilder {
        self.timed = true;
        self
    }

    /// Record a structured trace of every probe into
    /// [`CampaignRun::trace`].
    pub fn trace(mut self, config: TraceConfig) -> CampaignBuilder {
        self.trace = config;
        self
    }

    /// Enable (`true`, the default) or disable the per-shard compiled
    /// SPF policy cache. The cache is measurement-transparent:
    /// [`CampaignData`], traces, and exhibits are bit-for-bit identical
    /// either way (`tests/policy_cache.rs`), only the wall-clock cost of
    /// re-parsing and re-interpreting policies changes — so `false`
    /// exists for measuring the cache and fencing it off when debugging.
    pub fn policy_cache(mut self, enabled: bool) -> CampaignBuilder {
        self.no_policy_cache = !enabled;
        self
    }

    /// Re-probe only hosts whose status can have changed since their
    /// last conclusive measurement (see
    /// [`Session`](crate::Session) for the horizon model). The
    /// measurement fields of [`CampaignData`] are identical to a full
    /// rescan; the ethics audit, network counters, and trace reflect the
    /// probes actually issued — that reduction is the point.
    pub fn incremental(mut self) -> CampaignBuilder {
        self.incremental = true;
        self
    }

    /// Run the campaign in streaming mode: synthesize each host on
    /// demand from the world seed instead of reading a materialized
    /// [`World`], and fold initial results into bounded-size
    /// [`HostMask`](crate::HostMask)/[`OnlineAggregate`](crate::OnlineAggregate)
    /// summaries. Peak memory is O(tracked + aggregate) instead of
    /// O(hosts); the longitudinal measurements, traces, exhibits, and
    /// checkpoints are bit-for-bit those of eager mode
    /// (`tests/streaming_equivalence.rs`).
    pub fn streaming(mut self) -> CampaignBuilder {
        self.streaming = true;
        self
    }

    /// Open a staged [`Session`](crate::Session) for this configuration:
    /// the caller drives `initial_sweep` → `advance_round`* → `finish`
    /// explicitly and may checkpoint between stages.
    pub fn session<'w>(self, world: &'w dyn Population) -> crate::Session<'w> {
        crate::Session::new(self, world)
    }

    /// Run the configured campaign against `world` — the staged
    /// [`Session`](crate::Session) driven end to end in one call. With
    /// [`CampaignBuilder::streaming`] toggled the world is re-synthesized
    /// lazily from its config (the materialized `world` is only read for
    /// its seed and scale).
    pub fn run(self, world: &World) -> CampaignRun {
        if self.streaming {
            return self.run_streaming(world.config.clone()).run;
        }
        let mut session = self.session(world);
        session.initial_sweep();
        while session.advance_round().is_some() {}
        session.finish()
    }

    /// Run the configured campaign in streaming mode: hosts are
    /// synthesized on demand from the world seed and folded into
    /// bounded-size aggregates, so peak memory is O(tracked + aggregate)
    /// instead of O(hosts) — with [`CampaignData`]'s longitudinal fields,
    /// traces, exhibits, and checkpoints bit-for-bit identical to
    /// [`CampaignBuilder::run`] on the eagerly generated world. The
    /// initial per-host results exist only as
    /// [`HostMask`](crate::HostMask)s: `run.data.initial` is empty and
    /// [`CampaignRun::summary`] carries the comparison surface.
    pub fn run_streaming(self, config: spfail_world::WorldConfig) -> crate::StreamingRun {
        crate::streaming::run_streaming(self, config)
    }
}

/// The shared sweep primitives behind the staged
/// [`Session`](crate::Session) engine (and therefore behind
/// [`CampaignBuilder::run`]). Each helper is one self-contained stage
/// step; the session composes them into the sequential and sharded
/// engines.
pub(crate) struct Campaign;

impl Campaign {
    /// The initial sweep over `hosts` (the whole world for the
    /// sequential engine, one partition per shard worker).
    pub(crate) fn initial_sweep(
        prober: &mut Prober<'_>,
        counts: &mut HashMap<HostId, u32>,
        hosts: &[HostId],
    ) -> (InitialMeasurement, SimDuration) {
        let query_log = prober.context().query_log.clone();
        prober.context().tracer.set_phase(Phase::Initial);
        prober
            .context()
            .clock
            .advance_to(Timeline::day_to_time(Timeline::INITIAL));
        prober.ethics_mut().begin_sweep();
        let start = prober.context().clock.now();
        let mut results = HashMap::with_capacity(hosts.len());
        for &host in hosts {
            let (nomsg, attempts) =
                prober.probe_with_retry(host, Timeline::INITIAL, ProbeTest::NoMsg, 0);
            let mut seen = attempts;
            // BlankMsg only when NoMsg ran but elicited no SPF (§5.1).
            let blankmsg = if !nomsg.refused() && !nomsg.smtp_failure() && !nomsg.spf_measured()
            {
                let (outcome, attempts) =
                    prober.probe_with_retry(host, Timeline::INITIAL, ProbeTest::BlankMsg, seen);
                seen += attempts;
                Some(outcome)
            } else {
                None
            };
            counts.insert(host, seen);
            results.insert(host, HostInitialResult { nomsg, blankmsg });
            // Keep the query log bounded: each probe reads only its own
            // window, so anything older is dead weight.
            if query_log.len() > 50_000 {
                query_log.clear();
            }
        }
        let busy = prober.context().clock.now().since(start);
        (InitialMeasurement { results }, busy)
    }

    /// Derive the longitudinal tracking set from the initial sweep:
    /// tracked hosts, initially vulnerable domains, and the preferred
    /// test variant per tracked host. Pure post-processing — it reads
    /// only the merged sweep results, never the probing surfaces, so
    /// both engines share it verbatim.
    pub(crate) fn derive_tracking(
        world: &dyn Population,
        initial: &InitialMeasurement,
    ) -> (Vec<HostId>, Vec<DomainId>, HashMap<HostId, ProbeTest>) {
        // Track the vulnerable plus the transient-but-remeasurable.
        let mut tracked = initial.vulnerable_hosts();
        let mut transient: Vec<HostId> = initial
            .results
            .iter()
            .filter(|(host, result)| {
                result.transient() && result.vulnerable() && !tracked.contains(host)
            })
            .map(|(&host, _)| host)
            .collect();
        transient.sort_unstable();
        tracked.extend(transient);
        tracked.sort();

        let vulnerable_domains = world.derive_vulnerable_domains(&tracked);

        let preferred: HashMap<HostId, ProbeTest> = tracked
            .iter()
            .map(|&h| {
                let test = initial
                    .results
                    .get(&h)
                    .and_then(HostInitialResult::measured_by)
                    .unwrap_or(ProbeTest::BlankMsg);
                (h, test)
            })
            .collect();

        (tracked, vulnerable_domains, preferred)
    }

    /// One longitudinal round over `hosts` as of `day`.
    pub(crate) fn round_sweep(
        prober: &mut Prober<'_>,
        day: u16,
        hosts: &[HostId],
        preferred: &HashMap<HostId, ProbeTest>,
        counts: &mut HashMap<HostId, u32>,
    ) -> (HashMap<HostId, RoundStatus>, SimDuration) {
        prober.context().tracer.set_phase(Phase::Round(day));
        prober.context().clock.advance_to(Timeline::day_to_time(day));
        prober.context().query_log.clear();
        prober.ethics_mut().begin_sweep();
        let start = prober.context().clock.now();
        let mut statuses = HashMap::new();
        for &host in hosts {
            let seen = counts.entry(host).or_insert(0);
            let test = preferred[&host];
            let (outcome, attempts) = prober.probe_with_retry(host, day, test, *seen);
            *seen += attempts;
            statuses.insert(host, Self::round_status(&outcome));
        }
        let busy = prober.context().clock.now().since(start);
        (statuses, busy)
    }

    /// The snapshot's probe targets: for each initially vulnerable
    /// domain, its freshly re-resolved hosts that are tracked; plus the
    /// deduplicated, sorted union (each host is probed exactly once even
    /// when domains share servers).
    pub(crate) fn snapshot_targets(
        world: &dyn Population,
        vulnerable_domains: &[DomainId],
        tracked: &[HostId],
    ) -> (Vec<HostId>, Vec<(DomainId, Vec<HostId>)>) {
        let mut domain_hosts = Vec::with_capacity(vulnerable_domains.len());
        let mut targets = Vec::new();
        for &domain in vulnerable_domains {
            let hosts: Vec<HostId> = world
                .resolve_mail_hosts(domain, Timeline::END)
                .into_iter()
                .filter(|h| tracked.binary_search(h).is_ok())
                .collect();
            targets.extend(hosts.iter().copied());
            domain_hosts.push((domain, hosts));
        }
        targets.sort();
        targets.dedup();
        (targets, domain_hosts)
    }

    /// Probe each snapshot target once (with one retry when the first
    /// attempt was inconclusive) and record its February status.
    pub(crate) fn snapshot_sweep(
        prober: &mut Prober<'_>,
        hosts: &[HostId],
        preferred: &HashMap<HostId, ProbeTest>,
    ) -> (HashMap<HostId, RoundStatus>, SimDuration) {
        prober.context().tracer.set_phase(Phase::Snapshot);
        let start = prober.context().clock.now();
        let mut statuses = HashMap::new();
        for &host in hosts {
            let test = preferred.get(&host).copied().unwrap_or(ProbeTest::BlankMsg);
            let (mut outcome, _) = prober.probe_with_retry(host, Timeline::END, test, 0);
            if !outcome.spf_measured() {
                (outcome, _) = prober.probe_with_retry(host, Timeline::END, test, 0);
            }
            statuses.insert(host, Self::round_status(&outcome));
        }
        let busy = prober.context().clock.now().since(start);
        (statuses, busy)
    }

    /// Fold per-host snapshot statuses into per-domain verdicts: any
    /// vulnerable host condemns the domain; otherwise any inconclusive
    /// host leaves it unknown; only a clean sweep of patched hosts (of
    /// at least one host) counts as patched.
    pub(crate) fn aggregate_snapshot(
        domain_hosts: &[(DomainId, Vec<HostId>)],
        statuses: &HashMap<HostId, RoundStatus>,
    ) -> HashMap<DomainId, SnapshotStatus> {
        domain_hosts
            .iter()
            .map(|(domain, hosts)| {
                let status = if hosts.is_empty() {
                    SnapshotStatus::Unknown
                } else if hosts
                    .iter()
                    .any(|h| statuses.get(h) == Some(&RoundStatus::Vulnerable))
                {
                    SnapshotStatus::Vulnerable
                } else if hosts
                    .iter()
                    .any(|h| statuses.get(h) != Some(&RoundStatus::Patched))
                {
                    SnapshotStatus::Unknown
                } else {
                    SnapshotStatus::Patched
                };
                (*domain, status)
            })
            .collect()
    }

    /// A round's status is the probe's graceful-degradation verdict:
    /// only conclusive measurements claim `Vulnerable`/`Patched`; a
    /// host that was unreachable (or measured nothing) stays
    /// `Inconclusive` — it is never downgraded to patched.
    pub(crate) fn round_status(outcome: &ProbeOutcome) -> RoundStatus {
        match outcome.verdict() {
            ProbeVerdict::Vulnerable => RoundStatus::Vulnerable,
            ProbeVerdict::NotVulnerable => RoundStatus::Patched,
            ProbeVerdict::Unreachable | ProbeVerdict::Inconclusive => RoundStatus::Inconclusive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_world::WorldConfig;

    fn campaign() -> (World, CampaignData) {
        let world = World::generate(WorldConfig {
            scale: 0.004,
            ..WorldConfig::small(2024)
        });
        let data = CampaignBuilder::new().run(&world).data;
        (world, data)
    }

    #[test]
    fn initial_sweep_covers_every_host() {
        let (world, data) = campaign();
        assert_eq!(data.initial.results.len(), world.hosts.len());
    }

    #[test]
    fn detected_vulnerable_hosts_really_are_vulnerable() {
        let (world, data) = campaign();
        let detected = data.initial.vulnerable_hosts();
        assert!(!detected.is_empty(), "world must contain vulnerable hosts");
        for host in &detected {
            assert!(
                world.host(*host).profile.initially_vulnerable(),
                "no false positives: the fingerprint is unique to libSPF2"
            );
        }
    }

    #[test]
    fn detection_recall_is_high() {
        let (world, data) = campaign();
        // Ground truth: vulnerable AND reachable AND actually validating.
        let measurable: Vec<HostId> = world
            .initially_vulnerable_hosts()
            .into_iter()
            .filter(|&h| {
                let p = &world.host(h).profile;
                p.connect == spfail_mta::ConnectPolicy::Accept
                    && matches!(
                        p.quirk,
                        spfail_mta::SmtpQuirk::None | spfail_mta::SmtpQuirk::RejectMessage(_)
                    )
            })
            .collect();
        let detected = data.initial.vulnerable_hosts();
        let found = measurable
            .iter()
            .filter(|h| detected.contains(h))
            .count();
        let recall = found as f64 / measurable.len().max(1) as f64;
        assert!(recall > 0.75, "recall {recall} over {}", measurable.len());
    }

    #[test]
    fn rounds_cover_both_windows() {
        let (_, data) = campaign();
        assert_eq!(data.rounds.len(), Timeline::all_round_days().len());
        assert_eq!(data.rounds.first().map(|(d, _)| *d), Some(15));
        assert_eq!(data.rounds.last().map(|(d, _)| *d), Some(126));
    }

    #[test]
    fn patching_hosts_flip_status_at_their_patch_day() {
        let (world, data) = campaign();
        let mut checked = 0;
        for &host in &data.tracked {
            let profile = &world.host(host).profile;
            let Some(patch_day) = profile.patch_day else {
                continue;
            };
            if patch_day > Timeline::END || profile.blacklist_after.is_some() {
                continue;
            }
            // After the patch day the host must never measure vulnerable.
            for (day, statuses) in &data.rounds {
                if *day >= patch_day {
                    assert_ne!(
                        statuses.get(&host),
                        Some(&RoundStatus::Vulnerable),
                        "host {host:?} patched on day {patch_day} but vulnerable on {day}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "some patching host must have been checked");
    }

    #[test]
    fn inference_rules_work() {
        let (_, data) = campaign();
        let host = *data.tracked.first().expect("tracked hosts exist");
        // Whatever the measurements, inference must be monotone: never
        // Patched before Vulnerable.
        let mut seen_patched = false;
        for (day, _) in &data.rounds {
            match data.inferred_status(host, *day) {
                RoundStatus::Patched => seen_patched = true,
                RoundStatus::Vulnerable => {
                    assert!(!seen_patched, "no regression from patched to vulnerable");
                }
                RoundStatus::Inconclusive => {}
            }
        }
    }

    #[test]
    fn ethics_audit_reflects_the_campaign() {
        let (world, data) = campaign();
        // Longitudinal rounds re-contact the same addresses, so some
        // contacts must have waited out the 90-second spacing...
        assert!(data.ethics.immediate > 0);
        // ... and the sequential prober never holds two connections.
        assert!(data.ethics.peak_concurrency <= 2);
        // Every probe admitted went through the guard: at least one
        // contact per host in the initial sweep.
        assert!(
            (data.ethics.immediate + data.ethics.spaced) as usize >= world.hosts.len(),
            "every address was contacted at least once"
        );
    }

    #[test]
    fn snapshot_covers_all_vulnerable_domains() {
        let (_, data) = campaign();
        assert_eq!(data.snapshot.len(), data.vulnerable_domains.len());
        assert!(!data.snapshot.is_empty());
    }

    #[test]
    fn some_patching_is_observed_by_february() {
        let (_, data) = campaign();
        let patched = data
            .snapshot
            .values()
            .filter(|s| **s == SnapshotStatus::Patched)
            .count();
        assert!(
            patched > 0,
            "the snapshot must observe some patched domains"
        );
        let vulnerable = data
            .snapshot
            .values()
            .filter(|s| **s == SnapshotStatus::Vulnerable)
            .count();
        assert!(
            vulnerable > patched,
            "but the strong majority must remain vulnerable (~80%)"
        );
    }
}
