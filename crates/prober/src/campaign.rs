//! The full measurement programme (paper §5.3):
//!
//! * **Initial sweep** (day 0, 2021-10-11): every unique server address of
//!   both domain sets, NoMsg first, BlankMsg where NoMsg elicited no SPF.
//! * **Longitudinal rounds** every 2 days across two windows
//!   (Oct 26 – Nov 30 and Jan 15 – Feb 14), restricted to the initially
//!   vulnerable and the inconclusive-but-remeasurable addresses.
//! * **Final snapshot** (February 2022) with freshly resolved MX records.
//! * The §7.6 **inference rules**: a host measured vulnerable at time *t*
//!   was vulnerable at all *t' ≤ t*; one measured patched at *t* stays
//!   patched for all *t' ≥ t*.

use std::collections::HashMap;

use spfail_world::{DomainId, HostId, Timeline, World};

use crate::classify::Classification;
use crate::ethics::EthicsAudit;
use crate::probe::{ProbeOutcome, ProbeTest, Prober};

/// Table 3's per-address outcome ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostClass {
    /// TCP refused.
    Refused,
    /// SMTP failed before the probe ran its course, in every test tried.
    SmtpFailure,
    /// SPF behaviour conclusively measured.
    SpfMeasured,
    /// Transactions completed but no SPF activity was observed.
    SpfNotMeasured,
}

/// Both initial probes of one host.
#[derive(Debug, Clone)]
pub struct HostInitialResult {
    /// The NoMsg probe (always attempted).
    pub nomsg: ProbeOutcome,
    /// The BlankMsg probe, when the NoMsg result warranted one.
    pub blankmsg: Option<ProbeOutcome>,
}

impl HostInitialResult {
    /// The conclusive classification, from whichever test produced one.
    pub fn classification(&self) -> Option<&Classification> {
        if self.nomsg.spf_measured() {
            return Some(&self.nomsg.classification);
        }
        self.blankmsg
            .as_ref()
            .filter(|b| b.spf_measured())
            .map(|b| &b.classification)
    }

    /// The probe variant that produced the conclusive measurement.
    pub fn measured_by(&self) -> Option<ProbeTest> {
        if self.nomsg.spf_measured() {
            Some(ProbeTest::NoMsg)
        } else if self.blankmsg.as_ref().is_some_and(|b| b.spf_measured()) {
            Some(ProbeTest::BlankMsg)
        } else {
            None
        }
    }

    /// Whether the vulnerable fingerprint was observed in either test.
    pub fn vulnerable(&self) -> bool {
        self.classification().is_some_and(Classification::vulnerable)
    }

    /// Whether any probe ended in a transient failure (re-measurable).
    pub fn transient(&self) -> bool {
        let t = |p: &ProbeOutcome| {
            p.transaction
                .as_ref()
                .is_some_and(|o| o.is_transient())
        };
        t(&self.nomsg) || self.blankmsg.as_ref().is_some_and(t)
    }

    /// The Table 3 outcome class.
    pub fn class(&self) -> HostClass {
        if self.classification().is_some() {
            return HostClass::SpfMeasured;
        }
        if self.nomsg.refused() {
            return HostClass::Refused;
        }
        let failed = |p: &ProbeOutcome| p.smtp_failure();
        match &self.blankmsg {
            Some(blank) => {
                if failed(&self.nomsg) || failed(blank) {
                    HostClass::SmtpFailure
                } else {
                    HostClass::SpfNotMeasured
                }
            }
            None => {
                if failed(&self.nomsg) {
                    HostClass::SmtpFailure
                } else {
                    HostClass::SpfNotMeasured
                }
            }
        }
    }
}

/// The initial sweep's results.
#[derive(Debug, Clone, Default)]
pub struct InitialMeasurement {
    /// Per-host results (every unique address probed once).
    pub results: HashMap<HostId, HostInitialResult>,
}

impl InitialMeasurement {
    /// Hosts whose initial measurement showed the vulnerable fingerprint.
    pub fn vulnerable_hosts(&self) -> Vec<HostId> {
        let mut hosts: Vec<HostId> = self
            .results
            .iter()
            .filter(|(_, r)| r.vulnerable())
            .map(|(&h, _)| h)
            .collect();
        hosts.sort();
        hosts
    }
}

/// A host's status in one longitudinal round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundStatus {
    /// Measured with the vulnerable fingerprint.
    Vulnerable,
    /// Measured with a non-vulnerable (typically compliant) fingerprint.
    Patched,
    /// No conclusive measurement this round.
    Inconclusive,
}

/// A domain's status in the final snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotStatus {
    /// All of the domain's initially vulnerable hosts measured patched.
    Patched,
    /// At least one still measured vulnerable.
    Vulnerable,
    /// Never conclusively measured in February.
    Unknown,
}

/// Everything the campaign measured.
pub struct CampaignData {
    /// The initial sweep.
    pub initial: InitialMeasurement,
    /// Hosts tracked longitudinally (initially vulnerable + transient).
    pub tracked: Vec<HostId>,
    /// Per-round measurements: `(day, host -> status)`.
    pub rounds: Vec<(u16, HashMap<HostId, RoundStatus>)>,
    /// The final snapshot, per initially-vulnerable domain.
    pub snapshot: HashMap<DomainId, SnapshotStatus>,
    /// Initially vulnerable domains (any vulnerable host).
    pub vulnerable_domains: Vec<DomainId>,
    /// The §6.1 self-restraint audit for the whole campaign.
    pub ethics: EthicsAudit,
}

impl CampaignData {
    /// First round day a host was measured `Patched`, if ever.
    pub fn first_patched_day(&self, host: HostId) -> Option<u16> {
        self.rounds
            .iter()
            .find(|(_, statuses)| statuses.get(&host) == Some(&RoundStatus::Patched))
            .map(|(day, _)| *day)
    }

    /// Last round day a host was measured `Vulnerable`, if ever.
    pub fn last_vulnerable_day(&self, host: HostId) -> Option<u16> {
        self.rounds
            .iter()
            .rev()
            .find(|(_, statuses)| statuses.get(&host) == Some(&RoundStatus::Vulnerable))
            .map(|(day, _)| *day)
    }

    /// A host's status on `day` after applying the inference rules.
    pub fn inferred_status(&self, host: HostId, day: u16) -> RoundStatus {
        // Direct measurement wins.
        if let Some((_, statuses)) = self.rounds.iter().find(|(d, _)| *d == day) {
            match statuses.get(&host) {
                Some(&RoundStatus::Vulnerable) => return RoundStatus::Vulnerable,
                Some(&RoundStatus::Patched) => return RoundStatus::Patched,
                _ => {}
            }
        }
        // Rule 1: vulnerable later => vulnerable now (no regressions).
        if self.last_vulnerable_day(host).is_some_and(|d| d >= day) {
            return RoundStatus::Vulnerable;
        }
        // Rule 2: patched earlier => patched now.
        if self.first_patched_day(host).is_some_and(|d| d <= day) {
            return RoundStatus::Patched;
        }
        RoundStatus::Inconclusive
    }

    /// A domain's status on `day` (with inference): vulnerable while any
    /// initially-vulnerable host remains vulnerable; patched once all are.
    pub fn domain_status(&self, world: &World, domain: DomainId, day: u16) -> RoundStatus {
        let vulnerable_hosts: Vec<HostId> = world
            .domain(domain)
            .hosts
            .iter()
            .copied()
            .filter(|h| self.tracked.contains(h))
            .collect();
        if vulnerable_hosts.is_empty() {
            return RoundStatus::Inconclusive;
        }
        let mut all_patched = true;
        for host in vulnerable_hosts {
            match self.inferred_status(host, day) {
                RoundStatus::Vulnerable => return RoundStatus::Vulnerable,
                RoundStatus::Patched => {}
                RoundStatus::Inconclusive => all_patched = false,
            }
        }
        if all_patched {
            RoundStatus::Patched
        } else {
            RoundStatus::Inconclusive
        }
    }
}

/// The campaign driver.
pub struct Campaign;

impl Campaign {
    /// Run the complete measurement programme against `world`.
    pub fn run(world: &World) -> CampaignData {
        let mut prober = Prober::new(world, "s1");
        let mut counts: HashMap<HostId, u32> = HashMap::new();

        let initial = Self::initial_sweep(world, &mut prober, &mut counts);

        // Track the vulnerable plus the transient-but-remeasurable.
        let mut tracked = initial.vulnerable_hosts();
        for (&host, result) in &initial.results {
            if result.transient() && !tracked.contains(&host) && result.vulnerable() {
                tracked.push(host);
            }
        }
        tracked.sort();

        let vulnerable_domains: Vec<DomainId> = {
            let mut v: Vec<DomainId> = (0..world.domains.len() as u32)
                .map(DomainId)
                .filter(|&d| {
                    world
                        .domain(d)
                        .hosts
                        .iter()
                        .any(|h| tracked.binary_search(h).is_ok())
                })
                .collect();
            v.sort();
            v
        };

        // Preferred test per tracked host.
        let preferred: HashMap<HostId, ProbeTest> = tracked
            .iter()
            .map(|&h| {
                let test = initial
                    .results
                    .get(&h)
                    .and_then(HostInitialResult::measured_by)
                    .unwrap_or(ProbeTest::BlankMsg);
                (h, test)
            })
            .collect();

        // Longitudinal rounds.
        let mut rounds = Vec::new();
        for day in Timeline::all_round_days() {
            world.clock.advance_to(Timeline::day_to_time(day));
            world.query_log.clear();
            prober.ethics_mut().begin_sweep();
            let mut statuses = HashMap::new();
            for &host in &tracked {
                let seen = counts.entry(host).or_insert(0);
                let test = preferred[&host];
                let outcome = prober.probe(host, day, test, *seen);
                *seen += 1;
                let status = Self::round_status(&outcome);
                statuses.insert(host, status);
            }
            rounds.push((day, statuses));
        }

        // Final snapshot with re-resolved addresses (§5.1, §7.2): fresh
        // resolution reaches the provider's current servers, so the
        // campaign's accumulated blacklisting does not apply.
        world.clock.advance_to(Timeline::day_to_time(Timeline::END));
        world.query_log.clear();
        prober.ethics_mut().begin_sweep();
        let mut snapshot = HashMap::new();
        for &domain in &vulnerable_domains {
            let hosts = world.resolve_mail_hosts(domain, Timeline::END);
            let vulnerable_hosts: Vec<HostId> = hosts
                .into_iter()
                .filter(|h| tracked.binary_search(h).is_ok())
                .collect();
            if vulnerable_hosts.is_empty() {
                snapshot.insert(domain, SnapshotStatus::Unknown);
                continue;
            }
            let mut status = SnapshotStatus::Patched;
            for host in vulnerable_hosts {
                let test = preferred.get(&host).copied().unwrap_or(ProbeTest::BlankMsg);
                let mut outcome = prober.probe(host, Timeline::END, test, 0);
                if !outcome.spf_measured() {
                    outcome = prober.probe(host, Timeline::END, test, 0);
                }
                match Self::round_status(&outcome) {
                    RoundStatus::Vulnerable => {
                        status = SnapshotStatus::Vulnerable;
                        break;
                    }
                    RoundStatus::Patched => {}
                    RoundStatus::Inconclusive => {
                        if status == SnapshotStatus::Patched {
                            status = SnapshotStatus::Unknown;
                        }
                    }
                }
            }
            snapshot.insert(domain, status);
        }

        CampaignData {
            initial,
            tracked,
            rounds,
            snapshot,
            vulnerable_domains,
            ethics: prober.ethics().audit().clone(),
        }
    }

    /// The initial sweep over every unique address.
    fn initial_sweep(
        world: &World,
        prober: &mut Prober<'_>,
        counts: &mut HashMap<HostId, u32>,
    ) -> InitialMeasurement {
        world.clock.advance_to(Timeline::day_to_time(Timeline::INITIAL));
        prober.ethics_mut().begin_sweep();
        let mut results = HashMap::with_capacity(world.hosts.len());
        for raw in 0..world.hosts.len() as u32 {
            let host = HostId(raw);
            let nomsg = prober.probe(host, Timeline::INITIAL, ProbeTest::NoMsg, 0);
            let mut seen = 1;
            // BlankMsg only when NoMsg ran but elicited no SPF (§5.1).
            let blankmsg = if !nomsg.refused() && !nomsg.smtp_failure() && !nomsg.spf_measured()
            {
                let outcome = prober.probe(host, Timeline::INITIAL, ProbeTest::BlankMsg, seen);
                seen += 1;
                Some(outcome)
            } else {
                None
            };
            counts.insert(host, seen);
            results.insert(host, HostInitialResult { nomsg, blankmsg });
            // Keep the shared query log bounded: each probe reads only its
            // own window, so anything older is dead weight.
            if world.query_log.len() > 50_000 {
                world.query_log.clear();
            }
        }
        InitialMeasurement { results }
    }

    fn round_status(outcome: &ProbeOutcome) -> RoundStatus {
        if !outcome.spf_measured() {
            return RoundStatus::Inconclusive;
        }
        if outcome.classification.vulnerable() {
            RoundStatus::Vulnerable
        } else {
            RoundStatus::Patched
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_world::WorldConfig;

    fn campaign() -> (World, CampaignData) {
        let world = World::generate(WorldConfig {
            scale: 0.004,
            ..WorldConfig::small(2024)
        });
        let data = Campaign::run(&world);
        (world, data)
    }

    #[test]
    fn initial_sweep_covers_every_host() {
        let (world, data) = campaign();
        assert_eq!(data.initial.results.len(), world.hosts.len());
    }

    #[test]
    fn detected_vulnerable_hosts_really_are_vulnerable() {
        let (world, data) = campaign();
        let detected = data.initial.vulnerable_hosts();
        assert!(!detected.is_empty(), "world must contain vulnerable hosts");
        for host in &detected {
            assert!(
                world.host(*host).profile.initially_vulnerable(),
                "no false positives: the fingerprint is unique to libSPF2"
            );
        }
    }

    #[test]
    fn detection_recall_is_high() {
        let (world, data) = campaign();
        // Ground truth: vulnerable AND reachable AND actually validating.
        let measurable: Vec<HostId> = world
            .initially_vulnerable_hosts()
            .into_iter()
            .filter(|&h| {
                let p = &world.host(h).profile;
                p.connect == spfail_mta::ConnectPolicy::Accept
                    && matches!(
                        p.quirk,
                        spfail_mta::SmtpQuirk::None | spfail_mta::SmtpQuirk::RejectMessage(_)
                    )
            })
            .collect();
        let detected = data.initial.vulnerable_hosts();
        let found = measurable
            .iter()
            .filter(|h| detected.contains(h))
            .count();
        let recall = found as f64 / measurable.len().max(1) as f64;
        assert!(recall > 0.75, "recall {recall} over {}", measurable.len());
    }

    #[test]
    fn rounds_cover_both_windows() {
        let (_, data) = campaign();
        assert_eq!(data.rounds.len(), Timeline::all_round_days().len());
        assert_eq!(data.rounds.first().map(|(d, _)| *d), Some(15));
        assert_eq!(data.rounds.last().map(|(d, _)| *d), Some(126));
    }

    #[test]
    fn patching_hosts_flip_status_at_their_patch_day() {
        let (world, data) = campaign();
        let mut checked = 0;
        for &host in &data.tracked {
            let profile = &world.host(host).profile;
            let Some(patch_day) = profile.patch_day else {
                continue;
            };
            if patch_day > Timeline::END || profile.blacklist_after.is_some() {
                continue;
            }
            // After the patch day the host must never measure vulnerable.
            for (day, statuses) in &data.rounds {
                if *day >= patch_day {
                    assert_ne!(
                        statuses.get(&host),
                        Some(&RoundStatus::Vulnerable),
                        "host {host:?} patched on day {patch_day} but vulnerable on {day}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "some patching host must have been checked");
    }

    #[test]
    fn inference_rules_work() {
        let (_, data) = campaign();
        let host = *data.tracked.first().expect("tracked hosts exist");
        // Whatever the measurements, inference must be monotone: never
        // Patched before Vulnerable.
        let mut seen_patched = false;
        for (day, _) in &data.rounds {
            match data.inferred_status(host, *day) {
                RoundStatus::Patched => seen_patched = true,
                RoundStatus::Vulnerable => {
                    assert!(!seen_patched, "no regression from patched to vulnerable");
                }
                RoundStatus::Inconclusive => {}
            }
        }
    }

    #[test]
    fn ethics_audit_reflects_the_campaign() {
        let (world, data) = campaign();
        // Longitudinal rounds re-contact the same addresses, so some
        // contacts must have waited out the 90-second spacing...
        assert!(data.ethics.immediate > 0);
        // ... and the sequential prober never holds two connections.
        assert!(data.ethics.peak_concurrency <= 2);
        // Every probe admitted went through the guard: at least one
        // contact per host in the initial sweep.
        assert!(
            (data.ethics.immediate + data.ethics.spaced) as usize >= world.hosts.len(),
            "every address was contacted at least once"
        );
    }

    #[test]
    fn snapshot_covers_all_vulnerable_domains() {
        let (_, data) = campaign();
        assert_eq!(data.snapshot.len(), data.vulnerable_domains.len());
        assert!(!data.snapshot.is_empty());
    }

    #[test]
    fn some_patching_is_observed_by_february() {
        let (_, data) = campaign();
        let patched = data
            .snapshot
            .values()
            .filter(|s| **s == SnapshotStatus::Patched)
            .count();
        assert!(
            patched > 0,
            "the snapshot must observe some patched domains"
        );
        let vulnerable = data
            .snapshot
            .values()
            .filter(|s| **s == SnapshotStatus::Vulnerable)
            .count();
        assert!(
            vulnerable > patched,
            "but the strong majority must remain vulnerable (~80%)"
        );
    }
}
