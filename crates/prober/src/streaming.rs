//! The streaming campaign driver: bounded-memory measurement over a
//! lazily synthesized world.
//!
//! The eager engine materializes the whole population, probes it, and
//! keeps every per-host initial result for the lifetime of the run —
//! peak heap O(hosts). This driver runs the same campaign in three
//! bounded passes:
//!
//! 1. **Sweep** — drive a [`LazyWorld`] host stream through the initial
//!    sweep, folding each host's results into one [`HostMask`] the
//!    moment they exist and recording only the vulnerable `(host, ip)`
//!    pairs. Host records live exactly as long as their synthesis step;
//!    prober-side per-host state (repetition counters, contact history,
//!    blacklist counters) is pruned to the vulnerable set as the sweep
//!    goes, which is sound because host addresses are unique and every
//!    later phase re-probes only tracked hosts.
//! 2. **Retention replay** — re-drive the synthesis stream (identical by
//!    construction) keeping just the tracked host records and the
//!    domains that reference them: a [`SparsePopulation`] of O(tracked)
//!    records over the *live* runtime surface of pass 1.
//! 3. **Handoff** — assemble the sweep into an in-memory
//!    [`CampaignState`] (the same structure a checkpoint serialises,
//!    with the mask column as its `aggregate v1` section) and continue
//!    through the ordinary staged [`Session`]: the rounds, snapshot,
//!    trace merge, and summary are *the checkpoint-resume path*, which
//!    `tests/session_checkpoint.rs` already proves byte-identical to an
//!    uninterrupted run.
//!
//! Peak heap is O(shards + tracked + masks) — the mask column is 4
//! bytes per host, the one deliberately compact O(hosts) term — instead
//! of the eager engine's full population plus per-host probe outcomes
//! (`crates/bench/tests/alloc_count.rs` pins the budget).

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::mpsc::{sync_channel, Receiver};

use spfail_netsim::{PolicyCacheStats, SimDuration};
use spfail_trace::{Phase, Tracer};
use spfail_world::{
    HostId, HostRecord, LazyWorld, RuntimePopulation, SparsePopulation, Timeline, WorldConfig,
    WorldRuntime,
};

use crate::aggregate::HostMask;
use crate::campaign::{
    shard_of, CampaignBuilder, CampaignRun, HostInitialResult,
};
use crate::checkpoint::CampaignState;
use crate::ethics::MAX_CONCURRENT;
use crate::probe::{ProbeContext, ProbeTest, Prober};
use crate::session::{Session, SessionStats};

/// How many hosts a sweep worker probes between prunes of its per-host
/// state. Between prunes the maps hold at most this many dead entries,
/// so the interval trades prune overhead against the high-water mark.
const PRUNE_INTERVAL: usize = 4096;

/// Bound on in-flight host records per shard channel — the streamed
/// sweep's only buffering between synthesis and probing.
const CHANNEL_DEPTH: usize = 512;

/// Everything a streaming campaign run produced: the run itself plus
/// the retained population the longitudinal phases ran over (the
/// notification and reporting layers keep using it).
pub struct StreamingRun {
    /// The campaign run — summary, traces, and longitudinal data
    /// bit-for-bit those of the eager engine; `run.data.initial` is
    /// empty (the sweep's record is [`CampaignRun::summary`]'s masks).
    pub run: CampaignRun,
    /// The retained O(tracked) population.
    pub population: SparsePopulation,
}

/// A streamed initial sweep, ready to hand off to a staged [`Session`]:
/// the retained population plus the in-memory checkpoint the session
/// continues from. Built by [`StreamedCampaign::sweep`] (a fresh
/// campaign) or [`StreamedCampaign::adopt`] (resuming a checkpoint of
/// either vintage in streaming mode).
pub struct StreamedCampaign {
    population: SparsePopulation,
    state: CampaignState,
    /// Sequential sweeps hand their live policy cache to the rebuilt
    /// round worker — the eager sequential engine keeps one warm cache
    /// across all phases.
    cache: Option<spfail_mta::PolicyCacheHandle>,
    /// Sharded sweeps retire their workers at the sweep join; their
    /// cache tallies seed the session's merged total, as the eager
    /// sharded join does.
    cache_seed: PolicyCacheStats,
}

impl StreamedCampaign {
    /// Run the initial sweep for `builder` over the lazily synthesized
    /// world of `config`, then replay the stream to retain the tracked
    /// subset.
    pub fn sweep(builder: CampaignBuilder, config: WorldConfig) -> StreamedCampaign {
        let lazy = LazyWorld::new(config.clone());
        let runtime = lazy.runtime().clone();
        let sharded = builder.shards > 1;
        let sweep = if sharded {
            sweep_sharded(&builder, lazy, &runtime)
        } else {
            sweep_sequential(&builder, lazy, &runtime)
        };
        let tracked: Vec<HostId> = sweep.vulnerable.iter().map(|&(h, _)| h).collect();
        let population = retain(config.clone(), runtime, &tracked);
        let mut counts: Vec<(HostId, u32)> = sweep.counts.into_iter().collect();
        counts.sort_by_key(|(h, _)| *h);
        let state = CampaignState {
            builder,
            world_seed: config.seed,
            world_scale: config.scale,
            masks: Some(sweep.masks),
            rounds_done: 0,
            initial_busy: sweep.busy,
            rounds_busy: SimDuration::ZERO,
            stats: SessionStats::default(),
            initial: Vec::new(),
            rounds: Vec::new(),
            ethics_total: sweep.ethics_total,
            network_total: sweep.network_total,
            // The sharded engine consumes these when it creates its
            // round workers; the sequential worker carries its own.
            merged_counts: if sharded { counts } else { Vec::new() },
            workers: sweep.workers,
            trace_records: sweep.trace_records,
        };
        StreamedCampaign {
            population,
            state,
            cache: sweep.cache,
            cache_seed: sweep.cache_seed,
        }
    }

    /// Resume a checkpointed campaign state (of either vintage: eager
    /// init lines or a streamed aggregate section) in streaming mode:
    /// replay the synthesis stream to retain the tracked subset, then
    /// continue through [`StreamedCampaign::session`]. The checkpoint
    /// must be for the world of `config` (seed and scale are validated
    /// at session construction).
    pub fn adopt(state: CampaignState, config: WorldConfig) -> StreamedCampaign {
        let tracked: Vec<HostId> = match &state.masks {
            Some(masks) => masks
                .iter()
                .enumerate()
                .filter(|(_, &m)| HostMask(m).tracked())
                .map(|(i, _)| HostId(i as u32))
                .collect(),
            // `Campaign::derive_tracking`'s host set: the vulnerable
            // (its transient clause adds no further hosts). `initial`
            // is host-sorted in a checkpoint, so this is too.
            None => state
                .initial
                .iter()
                .filter(|(_, r)| r.vulnerable())
                .map(|&(h, _)| h)
                .collect(),
        };
        let runtime = WorldRuntime::new(config.clone());
        let population = retain(config, runtime, &tracked);
        StreamedCampaign {
            population,
            state,
            // A resumed session starts with cold caches in either mode
            // (the cache is derived state, absent from checkpoints).
            cache: None,
            cache_seed: PolicyCacheStats::default(),
        }
    }

    /// The retained population.
    pub fn population(&self) -> &SparsePopulation {
        &self.population
    }

    /// Consume the handoff, keeping the retained population.
    pub fn into_population(self) -> SparsePopulation {
        self.population
    }

    /// Open the staged [`Session`] that continues this campaign: rounds,
    /// snapshot, and finish run exactly as the eager engine's
    /// checkpoint-resume path.
    pub fn session(&self) -> Result<Session<'_>, String> {
        let mut session = Session::from_state(self.state.clone(), &self.population)?;
        if self.cache.is_some() {
            session.adopt_policy_cache(self.cache.clone());
        }
        session.seed_cache_total(self.cache_seed);
        Ok(session)
    }
}

/// Drive a full streaming campaign: sweep, retention, rounds, snapshot.
/// [`CampaignBuilder::run_streaming`] is the public spelling.
pub(crate) fn run_streaming(builder: CampaignBuilder, config: WorldConfig) -> StreamingRun {
    let streamed = StreamedCampaign::sweep(builder, config);
    let mut session = streamed
        .session()
        .expect("a fresh handoff state is self-consistent");
    while session.advance_round().is_some() {}
    let run = session.finish();
    StreamingRun {
        run,
        population: streamed.into_population(),
    }
}

/// What one sweep pass hands to the session, whichever engine ran it.
struct SweepOutput {
    /// One [`HostMask`] per host, index = host id — the 4-bytes-per-host
    /// column that replaces the eager engine's per-host results.
    masks: Vec<u32>,
    /// The tracked hosts and their (unique) addresses, id-sorted.
    vulnerable: Vec<(HostId, Ipv4Addr)>,
    /// Blacklist counters of the tracked hosts.
    counts: HashMap<HostId, u32>,
    /// Sharded: totals merged at the sweep join (sequential sweeps carry
    /// everything in their single worker instead).
    ethics_total: crate::EthicsAudit,
    network_total: spfail_netsim::MetricsSnapshot,
    /// Sequential: the single live worker's durable state (exactly one
    /// entry). Sharded: empty — round workers are created fresh.
    workers: Vec<crate::checkpoint::WorkerState>,
    trace_records: Vec<spfail_trace::ProbeRecord>,
    busy: SimDuration,
    cache: Option<spfail_mta::PolicyCacheHandle>,
    cache_seed: PolicyCacheStats,
}

/// Probe one streamed host: NoMsg first, BlankMsg where NoMsg elicited
/// no SPF — the per-host body of `Campaign::initial_sweep`, folded to a
/// mask the moment the outcomes exist.
fn sweep_host(prober: &mut Prober<'_>, host: HostId, record: &HostRecord) -> (HostMask, u32) {
    let (nomsg, attempts) =
        prober.probe_with_retry_record(host, record, Timeline::INITIAL, ProbeTest::NoMsg, 0);
    let mut seen = attempts;
    let blankmsg = if !nomsg.refused() && !nomsg.smtp_failure() && !nomsg.spf_measured() {
        let (outcome, attempts) = prober.probe_with_retry_record(
            host,
            record,
            Timeline::INITIAL,
            ProbeTest::BlankMsg,
            seen,
        );
        seen += attempts;
        Some(outcome)
    } else {
        None
    };
    let result = HostInitialResult { nomsg, blankmsg };
    (HostMask::from_initial(&result), seen)
}

/// Prune a sweep worker's per-host state down to the vulnerable hosts
/// seen so far. Sound mid-sweep: the sweep never revisits a host, host
/// addresses are unique, and every later phase re-probes only tracked
/// hosts — so the dropped entries can never be read again. Audit
/// counters and metrics are untouched.
fn prune(prober: &mut Prober<'_>, vulnerable: &[(HostId, Ipv4Addr)]) {
    let hosts: Vec<HostId> = vulnerable.iter().map(|&(h, _)| h).collect();
    prober.occurrences_retain(&hosts);
    let mut ips: Vec<IpAddr> = vulnerable.iter().map(|&(_, ip)| IpAddr::V4(ip)).collect();
    ips.sort();
    prober.ethics_mut().contacts_retain(&ips);
}

/// The sequential streamed sweep: one prober over the shared runtime
/// surfaces, hosts probed in id order as the stream synthesizes them —
/// the same probe sequence, clock, and query log as
/// `Session::initial_sweep`'s sequential arm over an eager world.
fn sweep_sequential(
    builder: &CampaignBuilder,
    lazy: LazyWorld,
    runtime: &WorldRuntime,
) -> SweepOutput {
    let pop = RuntimePopulation(runtime.clone());
    let tracer = Tracer::new(builder.trace);
    let mut prober = Prober::with_options(
        &pop,
        "s1",
        ProbeContext::shared(&pop)
            .with_tracer(tracer.clone())
            .with_policy_cache(!builder.no_policy_cache),
        MAX_CONCURRENT,
        builder.options,
    );
    let query_log = prober.context().query_log.clone();
    prober.context().tracer.set_phase(Phase::Initial);
    prober
        .context()
        .clock
        .advance_to(Timeline::day_to_time(Timeline::INITIAL));
    prober.ethics_mut().begin_sweep();
    let start = prober.context().clock.now();

    let mut masks: Vec<u32> = Vec::new();
    let mut vulnerable: Vec<(HostId, Ipv4Addr)> = Vec::new();
    let mut counts: HashMap<HostId, u32> = HashMap::new();
    for step in lazy {
        let first = step.first_fresh.0;
        for (offset, record) in step.fresh.iter().enumerate() {
            let host = HostId(first + offset as u32);
            let (mask, seen) = sweep_host(&mut prober, host, record);
            masks.push(mask.0);
            if mask.tracked() {
                vulnerable.push((host, record.ip));
                counts.insert(host, seen);
            }
            // Keep the query log bounded, as the eager sweep does.
            if query_log.len() > 50_000 {
                query_log.clear();
            }
            if masks.len() % PRUNE_INTERVAL == 0 {
                prune(&mut prober, &vulnerable);
            }
        }
    }
    prune(&mut prober, &vulnerable);
    let busy = prober.context().clock.now().since(start);

    // Export the one live worker exactly as `Session::to_state` would.
    let (ethics, contacts) = prober.ethics().export();
    let mut counts_sorted: Vec<(HostId, u32)> = counts.iter().map(|(&h, &n)| (h, n)).collect();
    counts_sorted.sort_by_key(|(h, _)| *h);
    let worker = crate::checkpoint::WorkerState {
        clock_micros: prober.context().clock.now().as_micros(),
        ethics,
        contacts,
        metrics: prober.metrics().snapshot(),
        occurrences: prober.occurrences_export(),
        counts: counts_sorted,
    };
    let cache = prober.context().policy_cache.clone();
    drop(prober);
    SweepOutput {
        masks,
        vulnerable,
        counts,
        ethics_total: crate::EthicsAudit::default(),
        network_total: spfail_netsim::MetricsSnapshot::default(),
        workers: vec![worker],
        trace_records: tracer.finish().records,
        busy,
        cache,
        cache_seed: PolicyCacheStats::default(),
    }
}

/// The sharded streamed sweep: the synthesis stream is dispatched to
/// per-shard workers over bounded channels ([`shard_of`] keys the
/// partition, so each worker receives exactly its eager partition in id
/// order), each worker probing through an isolated context with the
/// eager engine's per-shard budget. The join merges audits, network
/// counters, cache tallies, busy times, and traces exactly as
/// `Session::initial_sweep`'s sharded arm retires its workers.
fn sweep_sharded(
    builder: &CampaignBuilder,
    lazy: LazyWorld,
    runtime: &WorldRuntime,
) -> SweepOutput {
    let shards = builder.shards.max(1);
    let budget = (MAX_CONCURRENT / shards).max(1);
    let opts = builder.options;
    let trace = builder.trace;
    let cache_on = !builder.no_policy_cache;

    struct ShardOut {
        /// Masks of this shard's hosts in arrival (id) order; host id =
        /// `shard + i * shards`, so the stride reconstructs the column
        /// without shipping ids.
        masks: Vec<u32>,
        vulnerable: Vec<(HostId, Ipv4Addr)>,
        counts: HashMap<HostId, u32>,
        ethics: crate::EthicsAudit,
        network: spfail_netsim::MetricsSnapshot,
        cache: PolicyCacheStats,
        busy: SimDuration,
        trace: spfail_trace::Trace,
    }

    let worker = |rx: Receiver<(HostId, HostRecord)>| -> ShardOut {
        let pop = RuntimePopulation(runtime.clone());
        let tracer = Tracer::new(trace);
        let mut prober = Prober::with_options(
            &pop,
            "s1",
            ProbeContext::isolated(&pop)
                .with_tracer(tracer.clone())
                .with_policy_cache(cache_on),
            budget,
            opts,
        );
        let query_log = prober.context().query_log.clone();
        prober.context().tracer.set_phase(Phase::Initial);
        prober
            .context()
            .clock
            .advance_to(Timeline::day_to_time(Timeline::INITIAL));
        prober.ethics_mut().begin_sweep();
        let start = prober.context().clock.now();
        let mut masks = Vec::new();
        let mut vulnerable: Vec<(HostId, Ipv4Addr)> = Vec::new();
        let mut counts = HashMap::new();
        while let Ok((host, record)) = rx.recv() {
            let (mask, seen) = sweep_host(&mut prober, host, &record);
            masks.push(mask.0);
            if mask.tracked() {
                vulnerable.push((host, record.ip));
                counts.insert(host, seen);
            }
            if query_log.len() > 50_000 {
                query_log.clear();
            }
            if masks.len() % PRUNE_INTERVAL == 0 {
                prune(&mut prober, &vulnerable);
            }
        }
        let busy = prober.context().clock.now().since(start);
        ShardOut {
            masks,
            vulnerable,
            counts,
            ethics: prober.ethics().audit().clone(),
            network: prober.metrics().snapshot(),
            cache: prober.policy_cache_stats(),
            busy,
            trace: tracer.finish(),
        }
    };

    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel::<(HostId, HostRecord)>(CHANNEL_DEPTH);
        txs.push(tx);
        rxs.push(rx);
    }
    let host_count_hint = lazy.domain_count(); // lower bound, resized below
    let shard_outputs: Vec<ShardOut> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = rxs.into_iter().map(|rx| s.spawn(|_| worker(rx))).collect();
        // The feeder: synthesize on this thread, dispatch each fresh
        // host's record to its shard, drop the senders to close.
        for step in lazy {
            let first = step.first_fresh.0;
            for (offset, record) in step.fresh.into_iter().enumerate() {
                let host = HostId(first + offset as u32);
                txs[shard_of(host, shards)]
                    .send((host, record))
                    .expect("shard worker hung up");
            }
        }
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
    .expect("scope");

    let mut masks = vec![0u32; host_count_hint];
    let mut vulnerable = Vec::new();
    let mut counts = HashMap::new();
    let mut ethics_total = crate::EthicsAudit::default();
    let mut network_total = spfail_netsim::MetricsSnapshot::default();
    let mut cache_seed = PolicyCacheStats::default();
    let mut busy = SimDuration::ZERO;
    let mut trace_records = Vec::new();
    let total: usize = shard_outputs.iter().map(|o| o.masks.len()).sum();
    masks.resize(total, 0);
    for (shard, out) in shard_outputs.into_iter().enumerate() {
        for (i, m) in out.masks.into_iter().enumerate() {
            masks[shard + i * shards] = m;
        }
        vulnerable.extend(out.vulnerable);
        counts.extend(out.counts);
        ethics_total = ethics_total.merge(&out.ethics);
        network_total = network_total.merge(&out.network);
        cache_seed = cache_seed.merge(&out.cache);
        busy = busy.max(out.busy);
        trace_records.extend(out.trace.records);
    }
    vulnerable.sort_by_key(|&(h, _)| h);
    SweepOutput {
        masks,
        vulnerable,
        counts,
        ethics_total,
        network_total,
        workers: Vec::new(),
        trace_records,
        busy,
        cache: None,
        cache_seed,
    }
}

/// The retention replay: re-drive the synthesis stream (bit-identical
/// to the sweep's, both are `LazyWorld::new(config)`) keeping the
/// domains with a tracked host and *every* host those domains
/// reference — the records the rounds, snapshot, and notification
/// phases look up (delivery walks a vulnerable domain's whole MX list,
/// and the funnel reads every member host's ground truth, so tracked
/// hosts alone are not enough). The retained domains are precisely the
/// initially vulnerable ones, which is what makes
/// [`SparsePopulation::derive_vulnerable_domains`] agree with the eager
/// full-world scan.
///
/// Two passes: shared-hosting domains reference hosts synthesized for
/// *earlier* domains, so which hosts to keep is only known once every
/// domain's membership has streamed by. Pass one collects the host-id
/// set, pass two the records — synthesis is cheap, holding the
/// population is what streaming avoids.
fn retain(config: WorldConfig, runtime: WorldRuntime, tracked: &[HostId]) -> SparsePopulation {
    let mut keep_hosts: Vec<HostId> = Vec::new();
    for step in LazyWorld::new(config.clone()) {
        if step
            .domain
            .hosts
            .iter()
            .any(|h| tracked.binary_search(h).is_ok())
        {
            keep_hosts.extend(step.domain.hosts.iter().copied());
        }
    }
    keep_hosts.sort();
    keep_hosts.dedup();

    let mut population = SparsePopulation::new(runtime);
    for step in LazyWorld::new(config) {
        let first = step.first_fresh.0;
        for (offset, record) in step.fresh.into_iter().enumerate() {
            let id = HostId(first + offset as u32);
            if keep_hosts.binary_search(&id).is_ok() {
                population.insert_host(id, record);
            }
        }
        if step
            .domain
            .hosts
            .iter()
            .any(|h| tracked.binary_search(h).is_ok())
        {
            population.insert_domain(step.id, step.domain);
        }
    }
    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignSummary;
    use spfail_world::{Population, World};

    fn config() -> WorldConfig {
        WorldConfig {
            scale: 0.004,
            ..WorldConfig::small(7)
        }
    }

    #[test]
    fn streaming_summary_matches_eager_sequential() {
        let world = World::generate(config());
        let eager = CampaignBuilder::new().run(&world);
        let streamed = CampaignBuilder::new().run_streaming(config());
        assert_eq!(streamed.run.summary, eager.summary);
        // The longitudinal data minus the (deliberately empty) initial
        // results is equal too.
        assert_eq!(streamed.run.data.tracked, eager.data.tracked);
        assert_eq!(streamed.run.data.rounds, eager.data.rounds);
        assert_eq!(streamed.run.data.snapshot, eager.data.snapshot);
        assert!(streamed.run.data.initial.results.is_empty());
        assert_eq!(
            CampaignSummary::from_data(&eager.data).aggregate(),
            streamed.run.summary.aggregate()
        );
    }

    #[test]
    fn streaming_summary_matches_eager_sharded() {
        let world = World::generate(config());
        let eager = CampaignBuilder::new().shards(3).run(&world);
        let streamed = CampaignBuilder::new().shards(3).run_streaming(config());
        assert_eq!(streamed.run.summary, eager.summary);
    }

    #[test]
    fn retained_population_covers_the_longitudinal_phases() {
        let streamed = CampaignBuilder::new().run_streaming(config());
        for &host in &streamed.run.summary.tracked {
            assert!(streamed.population.has_host(host));
        }
        assert_eq!(
            streamed.population.domain_count(),
            streamed.run.summary.vulnerable_domains.len()
        );
        // Delivery and the snapshot walk each vulnerable domain's whole
        // MX list, so every member host must be retained, tracked or not.
        for &d in &streamed.run.summary.vulnerable_domains {
            for &h in &streamed.population.domain(d).hosts {
                assert!(streamed.population.has_host(h));
            }
        }
    }
}
