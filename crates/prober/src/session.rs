//! The staged longitudinal engine: explicit campaign stages, checkpoint
//! and resume at round boundaries, and incremental rounds.
//!
//! [`CampaignBuilder::run`] drives a [`Session`] end to end; callers
//! that need finer control open one with
//! [`CampaignBuilder::session`] and drive the stages themselves:
//!
//! 1. [`Session::initial_sweep`] — probe every host once (day 0);
//! 2. [`Session::advance_round`] — one longitudinal round per call;
//! 3. [`Session::finish`] — the re-resolving February snapshot and the
//!    assembled [`CampaignRun`].
//!
//! Between stages the session can be serialised with
//! [`Session::checkpoint`] and later continued with
//! [`Session::restore`]: killing a campaign at *any* round boundary and
//! resuming it produces byte-for-byte the [`CampaignData`], trace
//! export, and report exhibits of an uninterrupted run, for any shard
//! count and fault profile (`tests/session_checkpoint.rs`).
//!
//! That works because a campaign's durable state at a round boundary is
//! small and explicit. Every probe's randomness is derived from the
//! probe's own identity (see [`Prober::probe`]), never drawn from a
//! consuming stream, so no rng positions need saving: the only live
//! facts are the sweep results so far, each worker's clock, ethics
//! audit + contact history, network counters, probe-repetition
//! counters, and blacklist counters — plus the trace records already
//! emitted. [`CampaignState`](crate::checkpoint::CampaignState) is
//! exactly that inventory.
//!
//! **Incremental rounds** ([`CampaignBuilder::incremental`]) re-probe
//! only hosts whose status can have changed since their last conclusive
//! measurement. A tracked host may be *skipped* in a round when no
//! injected fault profile is active (faults perturb every probe), and
//! either:
//!
//! * the host is past its blacklist threshold and no retry policy is
//!   active: every connection is rejected at the banner, so the round
//!   is `Inconclusive` by construction; or
//! * the host never blacklists, no patch event lies in the window since
//!   its last conclusive measurement
//!   ([`spfail_world::HostProfile::status_event_in`], the patch-event
//!   horizon from the world timeline), and the probe the round would
//!   issue misses the host's flaky roll — replayed exactly from the
//!   probe's identity rng ([`Prober`]'s `would_flake`) without issuing
//!   the probe, so its last conclusive status carries.
//!
//! A skipped host records its carried status for the round and its
//! blacklist counter advances by the one attempt the full rescan would
//! have spent, so every *issued* probe still rolls exactly the dice it
//! would in a full rescan. The measurement fields of [`CampaignData`]
//! (`initial`, `tracked`, `rounds`, `snapshot`, `vulnerable_domains`)
//! are therefore identical to a full rescan; the ethics audit, network
//! counters, and trace shrink with the probe volume — that reduction
//! (≥5× at paper scale) is the point. [`Session::full_rescan`] forces
//! the next round to probe everything.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use spfail_dns::QueryLog;
use spfail_netsim::{MetricsSnapshot, PolicyCacheStats, SimDuration, SimTime};
use spfail_trace::{Trace, Tracer};
use spfail_world::{DomainId, HostId, Population, Timeline};

use crate::aggregate::{CampaignSummary, HostMask};
use crate::campaign::{
    partition_hosts, Campaign, CampaignBuilder, CampaignData, CampaignRun, CampaignTiming,
    InitialMeasurement, RoundStatus,
};
use crate::checkpoint::{CampaignState, WorkerState};
use crate::ethics::{EthicsAudit, MAX_CONCURRENT};
use crate::probe::{ProbeContext, ProbeTest, Prober};

/// Probe-volume counters for a session's longitudinal rounds — the
/// incremental engine's savings, measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Probes actually issued during rounds (retried sequences count
    /// once, like the paper's per-host probe budget).
    pub round_probes_issued: u64,
    /// Round probes the incremental horizon model answered from carried
    /// state instead of the network.
    pub round_probes_skipped: u64,
}

/// One live probing worker: the sequential engine has exactly one (kept
/// across the initial sweep and every round, like the original
/// monolithic engine), the sharded engine one per shard for the round
/// phase.
struct Worker<'w> {
    prober: Prober<'w>,
    tracer: Tracer,
    counts: HashMap<HostId, u32>,
    hosts: Vec<HostId>,
}

/// A staged, checkpointable campaign run. See the module docs.
pub struct Session<'w> {
    pop: &'w dyn Population,
    builder: CampaignBuilder,
    /// Rounds completed so far (index into `Timeline::all_round_days()`).
    rounds_done: usize,
    full_rescan_next: bool,
    initial: Option<InitialMeasurement>,
    tracked: Vec<HostId>,
    vulnerable_domains: Vec<DomainId>,
    preferred: HashMap<HostId, ProbeTest>,
    rounds: Vec<(u16, HashMap<HostId, RoundStatus>)>,
    /// Audit/counters merged from workers already retired (the sharded
    /// initial phase); live workers keep theirs until `finish`.
    ethics_total: EthicsAudit,
    network_total: MetricsSnapshot,
    /// Compiled-policy cache tallies merged from retired workers. Purely
    /// derived state: never checkpointed, and a restored session counts
    /// from zero again (its rebuilt workers start with cold caches).
    cache_total: PolicyCacheStats,
    initial_busy: SimDuration,
    rounds_busy: SimDuration,
    /// Trace records drained from retired workers and checkpoints; the
    /// final trace is the identity-ordered merge of these with the live
    /// tracers, so draining points leave no mark.
    trace_parts: Vec<Trace>,
    /// Per-host last conclusive measurement `(day, status)` — the
    /// incremental engine's carried state. Derivable from `initial` +
    /// `rounds`, so it is never checkpointed.
    last_conclusive: HashMap<HostId, (u16, RoundStatus)>,
    stats: SessionStats,
    workers: Vec<Worker<'w>>,
    /// Sharded only: per-host attempt counts merged from the initial
    /// phase, consumed when the round workers are created.
    merged_counts: HashMap<HostId, u32>,
    /// Streaming mode: the initial sweep's per-host results compressed
    /// to one [`HostMask`] per host (index = host id). When set, the
    /// session's `initial` is an empty sentinel (the sweep ran, its
    /// results live here) and [`Session::finish`] builds the run's
    /// summary from these masks.
    streamed: Option<Vec<u32>>,
}

impl<'w> Session<'w> {
    /// A fresh session for `builder` against `pop`.
    /// [`CampaignBuilder::session`] is the public spelling.
    pub(crate) fn new(builder: CampaignBuilder, pop: &'w dyn Population) -> Session<'w> {
        Session {
            pop,
            builder,
            rounds_done: 0,
            full_rescan_next: false,
            initial: None,
            tracked: Vec::new(),
            vulnerable_domains: Vec::new(),
            preferred: HashMap::new(),
            rounds: Vec::new(),
            ethics_total: EthicsAudit::default(),
            network_total: MetricsSnapshot::default(),
            cache_total: PolicyCacheStats::default(),
            initial_busy: SimDuration::ZERO,
            rounds_busy: SimDuration::ZERO,
            trace_parts: Vec::new(),
            last_conclusive: HashMap::new(),
            stats: SessionStats::default(),
            workers: Vec::new(),
            merged_counts: HashMap::new(),
            streamed: None,
        }
    }

    fn shards(&self) -> usize {
        self.builder.shards.max(1)
    }

    fn sharded(&self) -> bool {
        self.builder.shards > 1
    }

    fn cache_enabled(&self) -> bool {
        !self.builder.no_policy_cache
    }

    /// The hosts tracked longitudinally (set by the initial sweep).
    pub fn tracked(&self) -> &[HostId] {
        &self.tracked
    }

    /// Round days still to run.
    pub fn rounds_remaining(&self) -> usize {
        Timeline::all_round_days().len() - self.rounds_done
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// The session's probe-volume counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Force the next [`Session::advance_round`] to probe every tracked
    /// host, ignoring the incremental horizon for that round.
    pub fn full_rescan(&mut self) {
        self.full_rescan_next = true;
    }

    /// Stage 1: probe every unique server address once (day 0) and
    /// derive the longitudinal tracking set.
    ///
    /// # Panics
    ///
    /// If the initial sweep already ran (including via restore).
    pub fn initial_sweep(&mut self) {
        assert!(
            self.initial.is_none(),
            "Session::initial_sweep: the initial sweep already ran"
        );
        let world = self.pop;
        let host_count = world
            .full_host_count()
            .expect("the eager initial sweep needs the full population");
        let all_hosts: Vec<HostId> = (0..host_count as u32).map(HostId).collect();
        if !self.sharded() {
            let tracer = Tracer::new(self.builder.trace);
            let mut prober = Prober::with_options(
                world,
                "s1",
                ProbeContext::shared(world)
                    .with_tracer(tracer.clone())
                    .with_policy_cache(self.cache_enabled()),
                MAX_CONCURRENT,
                self.builder.options,
            );
            let mut counts = HashMap::new();
            let (initial, busy) = Campaign::initial_sweep(&mut prober, &mut counts, &all_hosts);
            self.initial_busy = busy;
            self.note_tracking(&initial);
            self.initial = Some(initial);
            // The sequential engine keeps this one prober (and clock)
            // across the initial sweep and every round.
            self.workers.push(Worker {
                prober,
                tracer,
                counts,
                hosts: self.tracked.clone(),
            });
            return;
        }

        // Sharded: one worker per shard, retired at the join. The scope
        // is the barrier — tracking derivation needs every shard's
        // results.
        let shards = self.shards();
        let budget = (MAX_CONCURRENT / shards).max(1);
        let partitions = partition_hosts(&all_hosts, shards);
        let opts = self.builder.options;
        let trace = self.builder.trace;
        let cache_on = self.cache_enabled();
        type SweepOut = (
            InitialMeasurement,
            HashMap<HostId, u32>,
            EthicsAudit,
            MetricsSnapshot,
            PolicyCacheStats,
            SimDuration,
            Trace,
        );
        let sweep_outputs: Vec<SweepOut> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .iter()
                .map(|part| {
                    s.spawn(move |_| {
                        let tracer = Tracer::new(trace);
                        let mut prober = Prober::with_options(
                            world,
                            "s1",
                            ProbeContext::isolated(world)
                                .with_tracer(tracer.clone())
                                .with_policy_cache(cache_on),
                            budget,
                            opts,
                        );
                        let mut counts = HashMap::new();
                        let (initial, busy) =
                            Campaign::initial_sweep(&mut prober, &mut counts, part);
                        (
                            initial,
                            counts,
                            prober.ethics().audit().clone(),
                            prober.metrics().snapshot(),
                            prober.policy_cache_stats(),
                            busy,
                            tracer.finish(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("scope");

        let mut initial = InitialMeasurement::default();
        for (part_initial, part_counts, part_audit, part_network, part_cache, busy, part_trace) in
            sweep_outputs
        {
            initial.results.extend(part_initial.results);
            self.merged_counts.extend(part_counts);
            self.ethics_total = self.ethics_total.merge(&part_audit);
            self.network_total = self.network_total.merge(&part_network);
            self.cache_total = self.cache_total.merge(&part_cache);
            self.initial_busy = self.initial_busy.max(busy);
            self.trace_parts.push(part_trace);
        }
        self.note_tracking(&initial);
        self.initial = Some(initial);
    }

    /// Derive tracking from the merged initial sweep and seed the
    /// incremental engine's carried state: every tracked host was
    /// conclusively measured vulnerable on day 0 (that is what made it
    /// tracked).
    fn note_tracking(&mut self, initial: &InitialMeasurement) {
        let (tracked, vulnerable_domains, preferred) =
            Campaign::derive_tracking(self.pop, initial);
        self.last_conclusive = tracked
            .iter()
            .map(|&h| (h, (Timeline::INITIAL, RoundStatus::Vulnerable)))
            .collect();
        self.tracked = tracked;
        self.vulnerable_domains = vulnerable_domains;
        self.preferred = preferred;
    }

    /// Record a finished round: push it onto the results and advance the
    /// carried per-host state by its conclusive measurements.
    fn note_round(&mut self, day: u16, statuses: HashMap<HostId, RoundStatus>) {
        let mut conclusive: Vec<(HostId, RoundStatus)> = statuses
            .iter()
            .filter(|(_, &status)| status != RoundStatus::Inconclusive)
            .map(|(&host, &status)| (host, status))
            .collect();
        conclusive.sort_unstable_by_key(|(host, _)| *host);
        for (host, status) in conclusive {
            self.last_conclusive.insert(host, (day, status));
        }
        self.rounds.push((day, statuses));
        self.rounds_done += 1;
        self.full_rescan_next = false;
    }

    /// The round phase's shard workers, created on the first round (the
    /// monolithic engine created them at the same point: fresh probers
    /// with fresh clocks, seeded with the initial sweep's per-host
    /// attempt counts).
    fn ensure_round_workers(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        let shards = self.shards();
        let budget = (MAX_CONCURRENT / shards).max(1);
        for part in partition_hosts(&self.tracked, shards) {
            let tracer = Tracer::new(self.builder.trace);
            let prober = Prober::with_options(
                self.pop,
                "s1",
                ProbeContext::isolated(self.pop)
                    .with_tracer(tracer.clone())
                    .with_policy_cache(self.cache_enabled()),
                budget,
                self.builder.options,
            );
            let counts = part
                .iter()
                .map(|h| (*h, self.merged_counts.get(h).copied().unwrap_or(0)))
                .collect();
            self.workers.push(Worker {
                prober,
                tracer,
                counts,
                hosts: part,
            });
        }
    }

    /// Stage 2: run the next longitudinal round. Returns the round's
    /// day, or `None` when all rounds have run.
    ///
    /// # Panics
    ///
    /// If the initial sweep has not run.
    pub fn advance_round(&mut self) -> Option<u16> {
        assert!(
            self.initial.is_some(),
            "Session::advance_round: run initial_sweep first"
        );
        let day = *Timeline::all_round_days().get(self.rounds_done)?;
        if self.sharded() {
            self.ensure_round_workers();
        }
        let incremental = self.builder.incremental;
        let full_rescan = self.full_rescan_next;
        let world = self.pop;
        let preferred = &self.preferred;
        let last_conclusive = &self.last_conclusive;
        let workers = &mut self.workers;
        type RoundOut = (HashMap<HostId, RoundStatus>, SimDuration, u64, u64);
        let step = |w: &mut Worker<'w>| -> RoundOut {
            if incremental {
                incremental_round_sweep(
                    &mut w.prober,
                    day,
                    &w.hosts,
                    preferred,
                    &mut w.counts,
                    last_conclusive,
                    world,
                    full_rescan,
                )
            } else {
                let (statuses, busy) =
                    Campaign::round_sweep(&mut w.prober, day, &w.hosts, preferred, &mut w.counts);
                let issued = w.hosts.len() as u64;
                (statuses, busy, issued, 0)
            }
        };
        let outputs: Vec<RoundOut> = if workers.len() == 1 {
            vec![step(&mut workers[0])]
        } else {
            // Every shard starts the round at the same simulated day, so
            // the round costs its slowest shard.
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .map(|w| s.spawn(move |_| step(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("scope")
        };
        let mut statuses = HashMap::new();
        let mut round_busy = SimDuration::ZERO;
        for (part_statuses, busy, issued, skipped) in outputs {
            statuses.extend(part_statuses);
            round_busy = round_busy.max(busy);
            self.stats.round_probes_issued += issued;
            self.stats.round_probes_skipped += skipped;
        }
        self.rounds_busy = self.rounds_busy + round_busy;
        self.note_round(day, statuses);
        Some(day)
    }

    /// Stage 3: the re-resolving February snapshot, then everything the
    /// campaign measured.
    ///
    /// # Panics
    ///
    /// If any stage is missing (initial sweep not run, rounds left).
    pub fn finish(mut self) -> CampaignRun {
        assert_eq!(
            self.rounds_remaining(),
            0,
            "Session::finish: advance_round until all rounds have run"
        );
        let world = self.pop;
        let opts = self.builder.options;
        let trace = self.builder.trace;
        let sharded = self.sharded();

        // Retire the round workers. Sequentially there is exactly one,
        // and its tracer keeps serving the snapshot prober — the
        // monolithic sequential engine used one tracer throughout.
        let mut seq_tracer = None;
        for Worker { prober, tracer, .. } in self.workers.drain(..) {
            self.ethics_total = self.ethics_total.merge(prober.ethics().audit());
            self.network_total = self.network_total.merge(&prober.metrics().snapshot());
            self.cache_total = self.cache_total.merge(&prober.policy_cache_stats());
            if sharded {
                self.trace_parts.push(tracer.finish());
            } else {
                seq_tracer = Some(tracer);
            }
        }

        // The snapshot re-resolves addresses (§5.1, §7.2): fresh
        // resolution reaches the provider's current servers, so the
        // campaign's accumulated blacklisting does not apply. It is its
        // own measurement sweep with its own prober(s): contact-spacing
        // decisions then depend only on the snapshot's own probe
        // sequence, never on how close the last longitudinal round
        // happened to finish.
        let (targets, domain_hosts) =
            Campaign::snapshot_targets(world, &self.vulnerable_domains, &self.tracked);
        let preferred = &self.preferred;
        let mut snapshot_busy = SimDuration::ZERO;
        let mut host_statuses: HashMap<HostId, RoundStatus> = HashMap::new();
        if !sharded {
            let tracer = seq_tracer.unwrap_or_else(|| Tracer::new(trace));
            let mut prober = Prober::with_options(
                world,
                "s1",
                ProbeContext::shared(world)
                    .with_tracer(tracer.clone())
                    .with_policy_cache(self.cache_enabled()),
                MAX_CONCURRENT,
                opts,
            );
            prober
                .context()
                .clock
                .advance_to(Timeline::day_to_time(Timeline::END));
            prober.context().query_log.clear();
            prober.ethics_mut().begin_sweep();
            let (statuses, busy) = Campaign::snapshot_sweep(&mut prober, &targets, preferred);
            host_statuses = statuses;
            snapshot_busy = busy;
            self.ethics_total = self.ethics_total.merge(prober.ethics().audit());
            self.network_total = self.network_total.merge(&prober.metrics().snapshot());
            self.cache_total = self.cache_total.merge(&prober.policy_cache_stats());
            self.trace_parts.push(tracer.finish());
        } else {
            let shards = self.shards();
            let budget = (MAX_CONCURRENT / shards).max(1);
            let target_parts = partition_hosts(&targets, shards);
            let cache_on = self.cache_enabled();
            type SnapOut = (
                HashMap<HostId, RoundStatus>,
                EthicsAudit,
                MetricsSnapshot,
                PolicyCacheStats,
                QueryLog,
                SimDuration,
                Trace,
            );
            let snapshot_outputs: Vec<SnapOut> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = target_parts
                    .iter()
                    .map(|part| {
                        s.spawn(move |_| {
                            let tracer = Tracer::new(trace);
                            let mut prober = Prober::with_options(
                                world,
                                "s1",
                                ProbeContext::isolated(world)
                                    .with_tracer(tracer.clone())
                                    .with_policy_cache(cache_on),
                                budget,
                                opts,
                            );
                            prober
                                .context()
                                .clock
                                .advance_to(Timeline::day_to_time(Timeline::END));
                            prober.ethics_mut().begin_sweep();
                            let (statuses, busy) =
                                Campaign::snapshot_sweep(&mut prober, part, preferred);
                            let log = prober.context().query_log.clone();
                            (
                                statuses,
                                prober.ethics().audit().clone(),
                                prober.metrics().snapshot(),
                                prober.policy_cache_stats(),
                                log,
                                busy,
                                tracer.finish(),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("scope");

            let mut snapshot_logs = Vec::new();
            for (statuses, part_audit, part_network, part_cache, log, busy, part_trace) in
                snapshot_outputs
            {
                host_statuses.extend(statuses);
                self.ethics_total = self.ethics_total.merge(&part_audit);
                self.network_total = self.network_total.merge(&part_network);
                self.cache_total = self.cache_total.merge(&part_cache);
                snapshot_logs.push(log);
                snapshot_busy = snapshot_busy.max(busy);
                self.trace_parts.push(part_trace);
            }

            // Leave the world's shared surfaces where the sequential
            // engine leaves them: clock at the snapshot day, query log
            // holding the snapshot phase's queries in simulated-time
            // order.
            let runtime = world.runtime();
            runtime.clock.advance_to(Timeline::day_to_time(Timeline::END));
            runtime.query_log.clear();
            runtime
                .query_log
                .extend(QueryLog::merged(snapshot_logs.iter()).snapshot());
        }
        let snapshot = Campaign::aggregate_snapshot(&domain_hosts, &host_statuses);

        let data = CampaignData {
            initial: self.initial.take().expect("initial sweep ran"),
            tracked: self.tracked,
            rounds: self.rounds,
            snapshot,
            vulnerable_domains: self.vulnerable_domains,
            ethics: self.ethics_total,
            network: self.network_total,
        };
        // The cross-mode comparison surface: a streamed session carried
        // its initial results as masks; an eager one compresses them now.
        let summary = match self.streamed.take() {
            Some(masks) => CampaignSummary {
                masks,
                tracked: data.tracked.clone(),
                vulnerable_domains: data.vulnerable_domains.clone(),
                rounds: data.rounds.clone(),
                snapshot: data.snapshot.clone(),
                ethics: data.ethics.clone(),
                network: data.network,
            },
            None => CampaignSummary::from_data(&data),
        };
        let timing = CampaignTiming {
            initial: self.initial_busy,
            rounds: self.rounds_busy,
            snapshot: snapshot_busy,
        };
        // Identity-order merge: neither which worker recorded a probe
        // nor where a checkpoint drained the tracer leaves any mark, so
        // this equals the uninterrupted single-tracer trace exactly.
        let trace = trace
            .enabled
            .then(|| Trace::merge(self.trace_parts.drain(..)));
        let cache = (!self.builder.no_policy_cache).then_some(self.cache_total);
        CampaignRun {
            data,
            summary,
            timing: self.builder.timed.then_some(timing),
            trace,
            cache,
        }
    }

    /// Serialise the session's durable state. Only legal at a stage
    /// boundary (which is the only place the caller can be): after
    /// `initial_sweep` or any number of `advance_round`s.
    ///
    /// Draining the live tracers into the state is not destructive —
    /// the final trace is an identity-ordered merge, so a session that
    /// checkpoints and carries on still produces the uninterrupted
    /// trace.
    ///
    /// # Panics
    ///
    /// If the initial sweep has not run (there is nothing to save that
    /// re-running `initial_sweep` would not recompute).
    pub fn to_state(&mut self) -> CampaignState {
        let initial = self
            .initial
            .as_ref()
            .expect("Session::checkpoint: run initial_sweep first");
        let mut initial_sorted: Vec<_> = initial
            .results
            .iter()
            .map(|(&h, r)| (h, r.clone()))
            .collect();
        initial_sorted.sort_by_key(|(h, _)| *h);
        let rounds = self
            .rounds
            .iter()
            .map(|(day, statuses)| {
                let mut hosts: Vec<_> = statuses.iter().map(|(&h, &s)| (h, s)).collect();
                hosts.sort_by_key(|(h, _)| *h);
                (*day, hosts)
            })
            .collect();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let (ethics, contacts) = w.prober.ethics().export();
                let mut counts: Vec<_> = w.counts.iter().map(|(&h, &n)| (h, n)).collect();
                counts.sort_by_key(|(h, _)| *h);
                WorkerState {
                    clock_micros: w.prober.context().clock.now().as_micros(),
                    ethics,
                    contacts,
                    metrics: w.prober.metrics().snapshot(),
                    occurrences: w.prober.occurrences_export(),
                    counts,
                }
            })
            .collect();
        // Drain the live tracers so the state holds every record
        // emitted so far; the handles stay usable for the next stage.
        for w in &self.workers {
            self.trace_parts.push(w.tracer.finish());
        }
        let trace_records = self
            .trace_parts
            .iter()
            .flat_map(|t| t.records.iter().cloned())
            .collect();
        let mut merged_counts: Vec<_> = self
            .merged_counts
            .iter()
            .map(|(&h, &n)| (h, n))
            .collect();
        merged_counts.sort_by_key(|(h, _)| *h);
        let config = &self.pop.runtime().config;
        CampaignState {
            builder: self.builder,
            world_seed: config.seed,
            world_scale: config.scale,
            masks: self.streamed.clone(),
            rounds_done: self.rounds_done,
            initial_busy: self.initial_busy,
            rounds_busy: self.rounds_busy,
            stats: self.stats,
            initial: initial_sorted,
            rounds,
            ethics_total: self.ethics_total.clone(),
            network_total: self.network_total,
            merged_counts,
            workers,
            trace_records,
        }
    }

    /// Rebuild a session from a [`CampaignState`] against `world`,
    /// which must be (a retained subset of) the world the checkpointed
    /// session ran against (same seed and scale — worlds are pure
    /// functions of those).
    ///
    /// A state carrying an aggregate section (written by a streaming
    /// session) has no per-host initial results: tracking is derived
    /// from the [`HostMask`] column instead, which preserves exactly the
    /// predicates `Campaign::derive_tracking` reads. Either state
    /// vintage restores against either population kind — mode can be
    /// toggled across a stop/resume boundary.
    pub fn from_state(state: CampaignState, world: &'w dyn Population) -> Result<Session<'w>, String> {
        let config = &world.runtime().config;
        if config.seed != state.world_seed {
            return Err(format!(
                "checkpoint is for world seed {}, got {}",
                state.world_seed, config.seed
            ));
        }
        if config.scale.to_bits() != state.world_scale.to_bits() {
            return Err(format!(
                "checkpoint is for world scale {}, got {}",
                state.world_scale, config.scale
            ));
        }
        let mut session = Session::new(state.builder, world);
        if let Some(masks) = state.masks {
            if !state.initial.is_empty() {
                return Err("checkpoint carries both init lines and an aggregate section".into());
            }
            // Aggregate branch: tracking from the mask column. Tracked
            // hosts are exactly those whose mask has the vulnerable bit
            // (`HostMask::tracked` mirrors `Campaign::derive_tracking`),
            // and the preferred re-probe test is the conclusive test the
            // mask recorded.
            let tracked: Vec<HostId> = masks
                .iter()
                .enumerate()
                .filter(|(_, &m)| HostMask(m).tracked())
                .map(|(i, _)| HostId(i as u32))
                .collect();
            session.preferred = tracked
                .iter()
                .map(|&h| {
                    let test = HostMask(masks[h.0 as usize])
                        .measured_by()
                        .unwrap_or(ProbeTest::BlankMsg);
                    (h, test)
                })
                .collect();
            session.last_conclusive = tracked
                .iter()
                .map(|&h| (h, (Timeline::INITIAL, RoundStatus::Vulnerable)))
                .collect();
            session.vulnerable_domains = world.derive_vulnerable_domains(&tracked);
            session.tracked = tracked;
            // The sweep ran; its per-host results live in the masks.
            session.initial = Some(InitialMeasurement::default());
            session.streamed = Some(masks);
        } else {
            let initial = InitialMeasurement {
                results: state.initial.into_iter().collect(),
            };
            session.note_tracking(&initial);
            session.initial = Some(initial);
        }
        session.initial_busy = state.initial_busy;
        session.rounds_busy = state.rounds_busy;
        session.stats = state.stats;
        session.ethics_total = state.ethics_total;
        session.network_total = state.network_total;
        session.merged_counts = state.merged_counts.into_iter().collect();
        for (day, hosts) in state.rounds {
            session.note_round(day, hosts.into_iter().collect());
        }
        if session.rounds_done != state.rounds_done {
            return Err(format!(
                "checkpoint records {} rounds but claims {} done",
                session.rounds_done, state.rounds_done
            ));
        }
        if !state.trace_records.is_empty() {
            session.trace_parts.push(Trace {
                records: state.trace_records,
            });
        }

        // Rebuild the live workers: a prober's durable state is its
        // clock, ethics guard, metrics, and probe-repetition counters —
        // everything else is a pure function of the world seed and the
        // suite label, so `with_options` + restore reproduces the
        // worker exactly.
        let sharded = session.sharded();
        let shards = session.shards();
        let budget = if sharded {
            (MAX_CONCURRENT / shards).max(1)
        } else {
            MAX_CONCURRENT
        };
        let expected = if sharded {
            // Before the first round the sharded engine has no live
            // workers (they are created lazily with the merged counts).
            if state.workers.is_empty() { 0 } else { shards }
        } else {
            1
        };
        if state.workers.len() != expected {
            return Err(format!(
                "checkpoint has {} worker states, expected {expected} for {} shard(s)",
                state.workers.len(),
                shards
            ));
        }
        let parts = partition_hosts(&session.tracked, shards);
        for (i, ws) in state.workers.into_iter().enumerate() {
            let tracer = Tracer::new(session.builder.trace);
            // Rebuilt workers start with cold policy caches: the cache is
            // derived state, deliberately absent from checkpoints, and
            // re-warming it is invisible to every measurement surface.
            let ctx = if sharded {
                ProbeContext::isolated(world)
            } else {
                ProbeContext::shared(world)
            }
            .with_policy_cache(session.cache_enabled());
            let mut prober = Prober::with_options(
                world,
                "s1",
                ctx.with_tracer(tracer.clone()),
                budget,
                session.builder.options,
            );
            prober
                .context()
                .clock
                .advance_to(SimTime::from_micros(ws.clock_micros));
            prober.ethics_mut().restore(ws.ethics, ws.contacts);
            prober.metrics().add_snapshot(&ws.metrics);
            prober.occurrences_restore(ws.occurrences);
            let hosts = if sharded {
                parts[i].clone()
            } else {
                session.tracked.clone()
            };
            session.workers.push(Worker {
                prober,
                tracer,
                // lint:allow(det-hash-iter) ws.counts is the checkpoint's sorted Vec, not a hash map; the name merely matches the Worker field
                counts: ws.counts.into_iter().collect(),
                hosts,
            });
        }
        Ok(session)
    }

    /// Write the session's durable state to `path`. See
    /// [`Session::to_state`] for what is saved and when this is legal.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_state().to_text())
    }

    /// Continue a checkpointed session from `path` against `world` —
    /// the inverse of [`Session::checkpoint`].
    pub fn restore(path: impl AsRef<Path>, world: &'w dyn Population) -> io::Result<Session<'w>> {
        let text = std::fs::read_to_string(path)?;
        let state = CampaignState::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Session::from_state(state, world)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Streaming handoff only: hand the (single, sequential) worker the
    /// live policy cache the streamed initial sweep warmed, so cache
    /// tallies accumulate across the sweep→rounds boundary exactly as
    /// the eager sequential engine's one long-lived prober does.
    ///
    /// # Panics
    ///
    /// If the session does not have exactly one worker.
    pub(crate) fn adopt_policy_cache(&mut self, cache: Option<spfail_mta::PolicyCacheHandle>) {
        assert_eq!(self.workers.len(), 1, "adopt_policy_cache: sequential only");
        self.workers[0].prober.set_policy_cache(cache);
    }

    /// Streaming handoff only: seed the retired-worker cache tally with
    /// the streamed initial sweep's stats (the sharded eager engine
    /// merges its initial-phase workers' stats here at their retirement).
    pub(crate) fn seed_cache_total(&mut self, stats: PolicyCacheStats) {
        self.cache_total = self.cache_total.merge(&stats);
    }
}

/// One incremental longitudinal round: identical to
/// `Campaign::round_sweep` except that hosts inside the skip horizon
/// answer from carried state. Returns the round statuses, the busy
/// time, and the issued/skipped probe counts.
#[allow(clippy::too_many_arguments)]
fn incremental_round_sweep(
    prober: &mut Prober<'_>,
    day: u16,
    hosts: &[HostId],
    preferred: &HashMap<HostId, ProbeTest>,
    counts: &mut HashMap<HostId, u32>,
    last_conclusive: &HashMap<HostId, (u16, RoundStatus)>,
    world: &dyn Population,
    full_rescan: bool,
) -> (HashMap<HostId, RoundStatus>, SimDuration, u64, u64) {
    prober
        .context()
        .tracer
        .set_phase(spfail_trace::Phase::Round(day));
    prober
        .context()
        .clock
        .advance_to(Timeline::day_to_time(day));
    prober.context().query_log.clear();
    prober.ethics_mut().begin_sweep();
    let start = prober.context().clock.now();
    let faults_active = prober.options().faults.is_active();
    let retries_active = prober.options().retry.max_attempts > 1;
    let mut statuses = HashMap::new();
    let mut issued = 0u64;
    let mut skipped = 0u64;
    for &host in hosts {
        let seen = counts.entry(host).or_insert(0);
        let test = preferred[&host];
        let profile = &world.host(host).profile;
        // The skip horizon. A host's round probe can be answered from
        // carried state only when nothing that can change the answer
        // lies in between — and injected faults perturb every probe, so
        // they disable skipping wholesale.
        let carried = if full_rescan || faults_active {
            None
        } else if let Some(limit) = profile.blacklist_after {
            // A host past its blacklist threshold rejects every
            // connection at the banner, so the round is Inconclusive no
            // matter what (even a flaky connect times out into the same
            // verdict) and a no-retry probe spends exactly one attempt.
            // Pre-threshold probes run for real — one probe can open
            // more than one connection (greylisting), so predicting the
            // crossing is not worth the machinery — as do retried ones,
            // whose attempt count depends on the rejection banner drawn.
            (*seen >= limit && !retries_active).then_some(RoundStatus::Inconclusive)
        } else {
            // Deterministic host: its last conclusive status survives
            // if no patch event lies in the window since and this
            // round's probe would miss the host's flaky roll (replayed
            // from the probe's identity rng without issuing it).
            last_conclusive
                .get(&host)
                .filter(|(last_day, _)| !profile.status_event_in(*last_day, day))
                .map(|&(_, status)| status)
                .filter(|_| !prober.would_flake(host, day, test, *seen))
        };
        if let Some(status) = carried {
            // A full rescan would spend exactly one deterministic,
            // conclusive attempt here; mirror its blacklist counter so
            // every probe this engine *does* issue rolls the same dice.
            *seen += 1;
            skipped += 1;
            statuses.insert(host, status);
            continue;
        }
        let (outcome, attempts) = prober.probe_with_retry(host, day, test, *seen);
        *seen += attempts;
        issued += 1;
        statuses.insert(host, Campaign::round_status(&outcome));
    }
    let busy = prober.context().clock.now().since(start);
    (statuses, busy, issued, skipped)
}
