//! Driving one probe transaction against one simulated host.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use spfail_dns::{Directory, QueryLog, SpfTestAuthority};
use spfail_mta::mta::ConnectDecision;
use spfail_mta::Mta;
use spfail_netsim::{SimClock, SimRng};
use spfail_smtp::address::EmailAddress;
use spfail_smtp::client::{
    ClientAction, ClientRunner, TransactionOutcome, TransactionPlan, TransactionStep,
    USERNAME_LADDER,
};
use spfail_smtp::session::SessionState;
use spfail_world::{HostId, World};

use crate::classify::{classify, Classification, RESERVED_ID_LABELS};
use crate::ethics::{EthicsGuard, MAX_CONCURRENT};

/// Which probe variant ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeTest {
    /// Abort before sending any message.
    NoMsg,
    /// Send an entirely blank message.
    BlankMsg,
}

impl ProbeTest {
    fn step(self) -> TransactionStep {
        match self {
            ProbeTest::NoMsg => TransactionStep::AbortBeforeMessage,
            ProbeTest::BlankMsg => TransactionStep::SendBlankMessage,
        }
    }
}

/// The simulation surfaces a prober probes through: the DNS directory
/// the probed MTAs resolve against (holding the measurement zone's
/// authority), that zone's query log, and the clock the ethics spacing
/// rules are enforced on.
///
/// The sequential engine probes through the world's shared surfaces;
/// the sharded engine gives each worker an isolated copy so probing on
/// one shard never observes another shard's queries or clock waits.
#[derive(Debug, Clone)]
pub struct ProbeContext {
    /// DNS directory the probed MTAs resolve through.
    pub directory: Directory,
    /// The measurement zone's query log.
    pub query_log: QueryLog,
    /// The clock probing advances.
    pub clock: SimClock,
}

impl ProbeContext {
    /// The world's own directory, log, and clock (sequential probing).
    pub fn shared(world: &World) -> ProbeContext {
        ProbeContext {
            directory: world.directory.clone(),
            query_log: world.query_log.clone(),
            clock: world.clock.clone(),
        }
    }

    /// A private directory, log, and clock for one shard worker. The
    /// clock starts at the world's current time; the directory holds a
    /// fresh measurement-zone authority recording into the private log.
    pub fn isolated(world: &World) -> ProbeContext {
        let clock = SimClock::starting_at(world.clock.now());
        let query_log = QueryLog::new();
        let directory = Directory::new();
        directory.register(Arc::new(SpfTestAuthority::new(
            world.zone_origin.clone(),
            query_log.clone(),
        )));
        ProbeContext {
            directory,
            query_log,
            clock,
        }
    }
}

/// Everything one probe produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    /// The probed host.
    pub host: HostId,
    /// Which variant ran.
    pub test: ProbeTest,
    /// The probe's unique id label.
    pub id: String,
    /// How the SMTP transaction concluded (None = TCP refused).
    pub transaction: Option<TransactionOutcome>,
    /// What the DNS queries revealed.
    pub classification: Classification,
}

impl ProbeOutcome {
    /// Whether TCP was refused outright.
    pub fn refused(&self) -> bool {
        self.transaction.is_none()
    }

    /// Whether the SMTP conversation failed before running its course
    /// (Table 3's "SMTP Failure" rows).
    pub fn smtp_failure(&self) -> bool {
        match &self.transaction {
            None => false,
            Some(outcome) => !matches!(
                outcome,
                TransactionOutcome::NoMsgCompleted
                    | TransactionOutcome::MessageAccepted(_)
                    | TransactionOutcome::MessageRejected(_)
            ),
        }
    }

    /// Whether SPF behaviour was conclusively measured.
    pub fn spf_measured(&self) -> bool {
        self.classification.conclusive()
    }
}

/// The probing client: owns the unique-label generator and the ethics
/// guard, and drives transactions against the world's hosts.
///
/// Every probe draws its randomness from a stream forked off the suite's
/// base RNG by the probe's full identity — host, day, test, replayed
/// connection count, and an occurrence counter for repeats. A host's
/// k-th identical probe therefore rolls identical dice no matter how
/// hosts are interleaved on one worker or partitioned across many,
/// which is the property the sharded campaign engine's shard-count
/// invariance rests on.
pub struct Prober<'w> {
    world: &'w World,
    /// The per-campaign suite label (§5.1: unique per test suite).
    pub suite: String,
    source_ip: IpAddr,
    ctx: ProbeContext,
    base_rng: SimRng,
    rng: SimRng,
    ethics: EthicsGuard,
    next_id: u64,
    occurrences: HashMap<(u32, u16, u8, u32), u64>,
}

impl<'w> Prober<'w> {
    /// A prober for `world` with the given suite label, probing through
    /// the world's shared context.
    pub fn new(world: &'w World, suite: &str) -> Prober<'w> {
        Prober::with_context(world, suite, ProbeContext::shared(world), MAX_CONCURRENT)
    }

    /// A prober probing through an explicit context with an explicit
    /// concurrency budget (the sharded engine splits [`MAX_CONCURRENT`]
    /// across its workers so the fleet-wide cap still holds).
    ///
    /// The base RNG depends only on the world seed and suite — never on
    /// the context or budget — so probers on different shards draw from
    /// the same per-probe streams.
    pub fn with_context(
        world: &'w World,
        suite: &str,
        ctx: ProbeContext,
        max_concurrent: usize,
    ) -> Prober<'w> {
        let base_rng = world.fork_rng(&format!("prober-{suite}"));
        Prober {
            world,
            suite: suite.to_string(),
            source_ip: "203.0.113.25".parse().expect("static address"),
            ethics: EthicsGuard::with_budget(ctx.clock.clone(), max_concurrent),
            rng: base_rng.fork("id-sequence"),
            base_rng,
            ctx,
            next_id: 0,
            occurrences: HashMap::new(),
        }
    }

    /// The context this prober probes through.
    pub fn context(&self) -> &ProbeContext {
        &self.ctx
    }

    /// The ethics guard (for audits).
    pub fn ethics(&self) -> &EthicsGuard {
        &self.ethics
    }

    /// Mutable ethics access (campaigns call `begin_sweep`).
    pub fn ethics_mut(&mut self) -> &mut EthicsGuard {
        &mut self.ethics
    }

    /// Generate the next unique probe id: a 4–5 character alphanumeric
    /// label that never collides with the fingerprint's fixed labels.
    /// The embedded base-36 counter guarantees uniqueness for the first
    /// 46 656 ids without relying on the random prefix.
    pub fn next_probe_id(&mut self) -> String {
        loop {
            self.next_id += 1;
            let len = 4 + (self.next_id % 2) as usize;
            let id = format!(
                "{}{}",
                self.rng.alnum_label(len - 3),
                base36(self.next_id % 46_656)
            );
            if !RESERVED_ID_LABELS.contains(&id.as_str()) && id != self.suite {
                return id;
            }
        }
    }

    /// Probe one host with one test variant as of measurement day `day`.
    ///
    /// `extra_connections` is how many probe connections this host has
    /// already received across the campaign (its blacklisting counter).
    ///
    /// The outcome is a pure function of `(host, day, test,
    /// extra_connections)` and how many times this prober has issued
    /// that exact probe before — repeating a probe rolls fresh (but
    /// reproducible) dice, and no other host's probes perturb it.
    pub fn probe(
        &mut self,
        host: HostId,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> ProbeOutcome {
        let test_tag = match test {
            ProbeTest::NoMsg => 0u8,
            ProbeTest::BlankMsg => 1u8,
        };
        let occurrence = {
            let counter = self
                .occurrences
                .entry((host.0, day, test_tag, extra_connections))
                .or_insert(0);
            let occurrence = *counter;
            *counter += 1;
            occurrence
        };
        let mut rng = self.base_rng.fork(&format!(
            "probe-h{}-d{day}-t{test_tag}-x{extra_connections}-n{occurrence}",
            host.0
        ));
        let id = Self::probe_id(&mut rng, &self.suite);
        let record = self.world.host(host);

        // Transient flakiness: the host is unreachable this round.
        if rng.chance(record.profile.flaky) {
            return ProbeOutcome {
                host,
                test,
                id,
                transaction: Some(TransactionOutcome::Transient {
                    stage: "connect",
                    code: 0,
                }),
                classification: Classification::default(),
            };
        }

        let mut mta = self.world.build_mta_in(
            host,
            day,
            self.ctx.directory.clone(),
            self.ctx.clock.clone(),
        );
        // Restore the host's cross-round connection count so blacklisting
        // thresholds apply campaign-wide, not per-instance.
        for _ in 0..extra_connections {
            let _ = mta.connect(self.source_ip);
        }

        let log_start = self.ctx.query_log.len();
        let sender_domain = format!(
            "{}.{}.{}",
            id,
            self.suite,
            self.world.zone_origin.to_ascii()
        );
        let transaction =
            self.run_transaction(&mut mta, IpAddr::V4(record.ip), &sender_domain, test);
        let entries = self.ctx.query_log.entries_from(log_start);
        let classification = classify(&entries, &id, &self.suite, &self.world.zone_origin);

        ProbeOutcome {
            host,
            test,
            id,
            transaction,
            classification,
        }
    }

    /// A probe id drawn from the probe's own stream: a 4–5 character
    /// alphanumeric label avoiding the fingerprint's fixed labels. Ids
    /// only need to be unique within one probe's query-log window (each
    /// probe classifies only the entries it appended itself), so two
    /// different probes drawing the same label is harmless.
    fn probe_id(rng: &mut SimRng, suite: &str) -> String {
        loop {
            let len = 4 + rng.below(2) as usize;
            let id = rng.alnum_label(len);
            if !RESERVED_ID_LABELS.contains(&id.as_str()) && id != suite {
                return id;
            }
        }
    }

    fn run_transaction(
        &mut self,
        mta: &mut Mta,
        ip: IpAddr,
        sender_domain: &str,
        test: ProbeTest,
    ) -> Option<TransactionOutcome> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            self.ethics.admit(ip);
            let outcome = self.run_once(mta, sender_domain, test);
            self.ethics.release(ip);
            match &outcome {
                // Greylisting: wait 8 minutes and retry once (§6.1).
                Some(TransactionOutcome::Transient { code, .. })
                    if (*code == 450 || *code == 451) && attempt == 1 =>
                {
                    self.ethics.greylist_wait(ip);
                }
                _ => return outcome,
            }
        }
    }

    /// One SMTP conversation. Returns `None` when TCP itself was refused.
    fn run_once(
        &mut self,
        mta: &mut Mta,
        sender_domain: &str,
        test: ProbeTest,
    ) -> Option<TransactionOutcome> {
        let banner = match mta.connect(self.source_ip) {
            ConnectDecision::Refused => return None,
            ConnectDecision::RejectedBanner(reply) => reply,
            ConnectDecision::Proceed => {
                let plan = self.plan(sender_domain, test);
                let (mut session, banner) = mta.open_session();
                let mut runner = ClientRunner::new(plan);
                let mut action = runner.on_reply(&banner);
                loop {
                    match action {
                        ClientAction::Send(cmd) => {
                            let reply = session.handle(&cmd);
                            action = runner.on_reply(&reply);
                        }
                        ClientAction::SendMessage(body) => {
                            let reply = session.handle_message(&body);
                            action = runner.on_reply(&reply);
                        }
                        ClientAction::HangUp(outcome) | ClientAction::Finish(outcome) => {
                            // Best-effort QUIT on clean finishes.
                            if session.state() != SessionState::Closed {
                                let _ = session.handle(&spfail_smtp::command::Command::Quit);
                            }
                            return Some(outcome);
                        }
                    }
                }
            }
        };
        // A rejecting banner concludes the transaction immediately.
        let plan = self.plan(sender_domain, test);
        let mut runner = ClientRunner::new(plan);
        match runner.on_reply(&banner) {
            ClientAction::Finish(outcome) | ClientAction::HangUp(outcome) => Some(outcome),
            _ => Some(TransactionOutcome::RejectedAtConnect(banner.code)),
        }
    }

    fn plan(&self, sender_domain: &str, test: ProbeTest) -> TransactionPlan {
        let sender = EmailAddress::new("mmj7yzdm0tbk", sender_domain)
            .expect("probe sender addresses are valid by construction");
        let recipients = USERNAME_LADDER
            .iter()
            .map(|user| {
                EmailAddress::new(user, "recipient.invalid")
                    .expect("ladder usernames are valid")
            })
            .collect();
        TransactionPlan {
            helo_domain: "probe.dns-lab.org".to_string(),
            sender,
            recipients,
            step: test.step(),
        }
    }
}

fn base36(mut n: u64) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::with_capacity(3);
    for _ in 0..3 {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(123))
    }

    #[test]
    fn probe_ids_are_unique_and_safe() {
        let w = world();
        let mut prober = Prober::new(&w, "s01");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let id = prober.next_probe_id();
            assert!((4..=5).contains(&id.len()), "id length: {id}");
            assert!(!RESERVED_ID_LABELS.contains(&id.as_str()));
            assert!(seen.insert(id), "ids must be unique");
        }
    }

    #[test]
    fn vulnerable_host_is_detected_remotely() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        // Pick the right test variant for the host's validation stage.
        let mut prober = Prober::new(&w, "s01");
        let nomsg = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        let outcome = if nomsg.spf_measured() {
            nomsg
        } else {
            prober.probe(host, 0, ProbeTest::BlankMsg, 0)
        };
        // A flaky roll may still have interfered; retry a bounded number
        // of times like the campaign does.
        let mut outcome = outcome;
        for _ in 0..5 {
            if outcome.spf_measured() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        }
        assert!(outcome.spf_measured(), "vulnerable host must be measurable");
        assert!(outcome.classification.vulnerable());
    }

    #[test]
    fn refused_host_yields_refused_outcome() {
        let w = world();
        let host = (0..w.hosts.len() as u32)
            .map(HostId)
            .find(|&h| {
                matches!(
                    w.host(h).profile.connect,
                    spfail_mta::ConnectPolicy::Refuse
                ) && w.host(h).profile.flaky == 0.0
            })
            .or_else(|| {
                (0..w.hosts.len() as u32).map(HostId).find(|&h| {
                    matches!(
                        w.host(h).profile.connect,
                        spfail_mta::ConnectPolicy::Refuse
                    )
                })
            })
            .expect("some refusing host");
        let mut prober = Prober::new(&w, "s02");
        let mut outcome = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        for _ in 0..5 {
            if outcome.refused() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        }
        assert!(outcome.refused());
        assert!(!outcome.spf_measured());
    }

    #[test]
    fn blacklisted_host_fails_smtp() {
        let w = world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| w.host(h).profile.blacklist_after.is_some())
            .expect("some blacklisting host");
        let threshold = w.host(host).profile.blacklist_after.unwrap();
        let mut prober = Prober::new(&w, "s03");
        let mut outcome = prober.probe(host, 20, ProbeTest::NoMsg, threshold + 1);
        for _ in 0..5 {
            if outcome.smtp_failure() {
                break;
            }
            outcome = prober.probe(host, 20, ProbeTest::NoMsg, threshold + 1);
        }
        assert!(outcome.smtp_failure());
        assert!(!outcome.spf_measured());
    }

    #[test]
    fn patched_host_measures_compliant_after_patch_day() {
        let w = world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| {
                let p = &w.host(h).profile;
                p.patch_day.is_some_and(|d| d <= 126)
                    && p.blacklist_after.is_none()
                    && p.quirk == spfail_mta::SmtpQuirk::None
                    && p.connect == spfail_mta::ConnectPolicy::Accept
                    && p.impls.len() == 1
            })
            .expect("a cleanly patching host");
        let patch_day = w.host(host).profile.patch_day.unwrap();
        let mut prober = Prober::new(&w, "s04");
        let probe_once = |prober: &mut Prober, day: u16| {
            let mut outcome = prober.probe(host, day, ProbeTest::NoMsg, 0);
            if !outcome.spf_measured() {
                outcome = prober.probe(host, day, ProbeTest::BlankMsg, 0);
            }
            for _ in 0..6 {
                if outcome.spf_measured() {
                    break;
                }
                outcome = prober.probe(host, day, ProbeTest::BlankMsg, 0);
            }
            outcome
        };
        let before = probe_once(&mut prober, patch_day.saturating_sub(1));
        assert!(before.classification.vulnerable());
        let after = probe_once(&mut prober, patch_day);
        assert!(after.spf_measured());
        assert!(!after.classification.vulnerable());
        assert!(after.classification.compliant_only());
    }

    #[test]
    fn greylisting_host_is_retried_and_measured() {
        let w = world();
        // Find a greylisting SPF host that otherwise behaves. It must
        // validate at the DATA stage: an OnMailFrom host rejects the
        // probe's failing SPF before RCPT, so its greylisting never
        // engages.
        let host = (0..w.hosts.len() as u32).map(HostId).find(|&h| {
            let p = &w.host(h).profile;
            p.greylist
                && p.spf_stage == spfail_mta::SpfStage::OnData
                && p.connect == spfail_mta::ConnectPolicy::Accept
                && p.quirk == spfail_mta::SmtpQuirk::None
                && p.rcpt_reject_first_n == 0
        });
        let Some(host) = host else {
            return; // tiny worlds may lack one; other tests cover the logic
        };
        let mut prober = Prober::new(&w, "s05");
        let mut outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        for _ in 0..6 {
            if outcome.spf_measured() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        }
        assert!(outcome.spf_measured());
        assert!(prober.ethics().audit().greylist_waits >= 1);
    }
}
