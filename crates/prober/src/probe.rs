//! Driving one probe transaction against one simulated host.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use spfail_dns::{Directory, QueryLog, SpfTestAuthority};
use spfail_mta::mta::ConnectDecision;
use spfail_mta::{new_policy_cache, Mta, PolicyCacheHandle};
use spfail_netsim::{
    FaultOutcome, FaultProfile, Metrics, PolicyCacheStats, ProbeError, SimClock, SimDuration,
    SimRng,
};
use spfail_smtp::address::EmailAddress;
use spfail_smtp::client::{
    ClientAction, ClientRunner, TransactionOutcome, TransactionPlan, TransactionStep,
    USERNAME_LADDER,
};
use spfail_smtp::session::SessionState;
use spfail_trace::{SpanKind, Tracer};
use spfail_world::{HostId, HostRecord, MtaInstrumentation, Population, Timeline};

use crate::classify::{classify, Classification, RESERVED_ID_LABELS};
use crate::ethics::{EthicsGuard, GREYLIST_WAIT, MAX_CONCURRENT, MIN_RECONTACT};

/// How long a connection attempt waits before giving up on a host that
/// never answers (a flaky host or a closed reachability window). The
/// wait is charged to the simulated clock: unreachability costs time,
/// it is never an instant failure.
pub const CONNECT_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Which probe variant ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeTest {
    /// Abort before sending any message.
    NoMsg,
    /// Send an entirely blank message.
    BlankMsg,
}

impl ProbeTest {
    fn step(self) -> TransactionStep {
        match self {
            ProbeTest::NoMsg => TransactionStep::AbortBeforeMessage,
            ProbeTest::BlankMsg => TransactionStep::SendBlankMessage,
        }
    }

    fn tag(self) -> u8 {
        match self {
            ProbeTest::NoMsg => 0,
            ProbeTest::BlankMsg => 1,
        }
    }
}

/// Graceful-degradation verdict of one probe: what the measurement is
/// allowed to claim about the host given how the probe concluded.
///
/// The distinction that matters under fault load is `Unreachable` /
/// `Inconclusive` vs [`ProbeVerdict::NotVulnerable`]: a host that stayed
/// dark is *never* reported as not vulnerable — only a conclusive
/// non-vulnerable fingerprint earns that verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeVerdict {
    /// The vulnerable fingerprint was conclusively measured.
    Vulnerable,
    /// A non-vulnerable (typically compliant) fingerprint was
    /// conclusively measured.
    NotVulnerable,
    /// The host could not be reached (refused, timed out, reset, or
    /// tempfailed): nothing can be claimed about its SPF behaviour.
    Unreachable,
    /// The host was reached but the probe produced no conclusive
    /// measurement.
    Inconclusive,
}

/// Retry/timeout/backoff policy for [`Prober::probe_with_retry`].
///
/// Backoff is exponential with deterministic jitter: attempt `k` waits
/// `base_backoff * 2^(k-1)` (capped at `max_backoff`), scaled by a
/// jitter factor drawn from a stream forked off the probe's identity —
/// so sharded and sequential campaigns wait out identical backoffs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Upper bound on a single backoff (`ZERO` = uncapped).
    pub max_backoff: SimDuration,
    /// Jitter width as a fraction of the backoff: the wait is scaled
    /// uniformly within `[1 - jitter/2, 1 + jitter/2)`.
    pub jitter: f64,
    /// Give up retrying once this much simulated time has elapsed since
    /// the probe's first attempt.
    pub deadline: Option<SimDuration>,
}

impl RetryPolicy {
    /// No retries: a single attempt, exactly the pre-retry behaviour.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff: SimDuration::ZERO,
        max_backoff: SimDuration::ZERO,
        jitter: 0.0,
        deadline: None,
    };

    /// The per-probe deadline, drawn from the ethics budget: one
    /// greylist wait plus two contact-spacing intervals. Retrying past
    /// this point would spend more of the per-host contact budget than
    /// the §6.1 self-restraint rules allot to a single measurement.
    pub const DEADLINE: SimDuration = SimDuration::from_micros(
        GREYLIST_WAIT.as_micros() + 2 * MIN_RECONTACT.as_micros(),
    );

    /// The standard resilient policy: three attempts, 10 s base backoff
    /// doubling to at most 2 min, 50% jitter, deadline from the ethics
    /// budget.
    pub const fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(10),
            max_backoff: SimDuration::from_mins(2),
            jitter: 0.5,
            deadline: Some(RetryPolicy::DEADLINE),
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based: the
    /// wait between the first and second attempts is `backoff(1, ..)`).
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(20);
        let mut wait = self.base_backoff.mul(1u64 << exp);
        if self.max_backoff > SimDuration::ZERO && wait > self.max_backoff {
            wait = self.max_backoff;
        }
        if self.jitter <= 0.0 || wait == SimDuration::ZERO {
            return wait;
        }
        let factor = 1.0 - self.jitter / 2.0 + rng.unit() * self.jitter;
        SimDuration::from_micros((wait.as_micros() as f64 * factor) as u64)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::NONE
    }
}

/// Everything configurable about how a prober probes: the fault regime
/// the network imposes on it and the retry policy it answers with. The
/// default injects nothing and never retries — byte-for-byte the
/// pre-fault-subsystem behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeOptions {
    /// Faults injected on the DNS and SMTP paths.
    pub faults: FaultProfile,
    /// The prober's retry/backoff policy.
    pub retry: RetryPolicy,
}

/// The simulation surfaces a prober probes through: the DNS directory
/// the probed MTAs resolve against (holding the measurement zone's
/// authority), that zone's query log, and the clock the ethics spacing
/// rules are enforced on.
///
/// The sequential engine probes through the world's shared surfaces;
/// the sharded engine gives each worker an isolated copy so probing on
/// one shard never observes another shard's queries or clock waits.
#[derive(Debug, Clone)]
pub struct ProbeContext {
    /// DNS directory the probed MTAs resolve through.
    pub directory: Directory,
    /// The measurement zone's query log.
    pub query_log: QueryLog,
    /// The clock probing advances.
    pub clock: SimClock,
    /// The tracing handle probe spans are recorded into (disabled by
    /// default, which costs nothing).
    pub tracer: Tracer,
    /// The shard's compiled-policy evaluation cache, shared by every MTA
    /// this context builds (`None` = the interpretive evaluator). The
    /// cache is measurement-transparent, so probing observes the same
    /// queries, clock, and traces either way.
    pub policy_cache: Option<PolicyCacheHandle>,
}

impl ProbeContext {
    /// The population's own directory, log, and clock (sequential
    /// probing).
    pub fn shared(pop: &dyn Population) -> ProbeContext {
        let runtime = pop.runtime();
        ProbeContext {
            directory: runtime.directory.clone(),
            query_log: runtime.query_log.clone(),
            clock: runtime.clock.clone(),
            tracer: Tracer::disabled(),
            policy_cache: None,
        }
    }

    /// A private directory, log, and clock for one shard worker. The
    /// clock starts at the population's current time; the directory holds
    /// a fresh measurement-zone authority recording into the private log.
    pub fn isolated(pop: &dyn Population) -> ProbeContext {
        let runtime = pop.runtime();
        let clock = SimClock::starting_at(runtime.clock.now());
        let query_log = QueryLog::new();
        let directory = Directory::new();
        directory.register(Arc::new(SpfTestAuthority::new(
            runtime.zone_origin.clone(),
            query_log.clone(),
        )));
        ProbeContext {
            directory,
            query_log,
            clock,
            tracer: Tracer::disabled(),
            policy_cache: None,
        }
    }

    /// The same context recording into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> ProbeContext {
        self.tracer = tracer;
        self
    }

    /// The same context with a fresh compiled-policy cache when
    /// `enabled`, or back on the interpretive evaluator when not.
    pub fn with_policy_cache(mut self, enabled: bool) -> ProbeContext {
        self.policy_cache = enabled.then(new_policy_cache);
        self
    }
}

/// Everything one probe produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    /// The probed host.
    pub host: HostId,
    /// Which variant ran.
    pub test: ProbeTest,
    /// The probe's unique id label.
    pub id: String,
    /// How the SMTP transaction concluded (None = TCP refused).
    pub transaction: Option<TransactionOutcome>,
    /// What the DNS queries revealed.
    pub classification: Classification,
    /// An injected DNS fault observed on the probed host's resolver
    /// during this probe (`None` when the resolver ran clean). A
    /// transaction can run to completion and still carry one of these —
    /// the host's SPF check silently timed out — which is why an
    /// unmeasured-but-completed probe with a DNS fault retries instead
    /// of being taken at face value.
    pub dns_fault: Option<ProbeError>,
}

impl ProbeOutcome {
    /// Whether TCP was refused outright.
    pub fn refused(&self) -> bool {
        self.transaction.is_none()
    }

    /// Whether the SMTP conversation failed before running its course
    /// (Table 3's "SMTP Failure" rows).
    pub fn smtp_failure(&self) -> bool {
        match &self.transaction {
            None => false,
            Some(outcome) => !matches!(
                outcome,
                TransactionOutcome::NoMsgCompleted
                    | TransactionOutcome::MessageAccepted(_)
                    | TransactionOutcome::MessageRejected(_)
            ),
        }
    }

    /// Whether SPF behaviour was conclusively measured.
    pub fn spf_measured(&self) -> bool {
        self.classification.conclusive()
    }

    /// Why the probe failed to measure, in the stack-wide [`ProbeError`]
    /// vocabulary, or `None` when it measured (or completed without any
    /// SPF activity to observe).
    pub fn probe_error(&self) -> Option<ProbeError> {
        if self.spf_measured() {
            // A vulnerable fingerprint is a positive signal — dropped
            // datagrams cannot fabricate it. A *non*-vulnerable shape
            // seen through a DNS fault is suspect: the fault may have
            // eaten the fingerprint queries, so the measurement is
            // retryable, not conclusive.
            return if self.classification.vulnerable() {
                None
            } else {
                self.dns_fault
            };
        }
        match &self.transaction {
            None => Some(ProbeError::ConnectRefused),
            Some(outcome) => outcome.probe_error().or(self.dns_fault),
        }
    }

    /// The graceful-degradation verdict (see [`ProbeVerdict`]).
    pub fn verdict(&self) -> ProbeVerdict {
        if self.spf_measured() {
            if self.classification.vulnerable() {
                return ProbeVerdict::Vulnerable;
            }
            return if self.dns_fault.is_none() {
                ProbeVerdict::NotVulnerable
            } else {
                // The host answered and its queries looked compliant,
                // but an injected DNS fault disturbed the resolution —
                // never downgrade a possibly-dark host to NotVulnerable.
                ProbeVerdict::Inconclusive
            };
        }
        match self.probe_error() {
            Some(err) if err.is_transient() => ProbeVerdict::Unreachable,
            Some(ProbeError::ConnectRefused) => ProbeVerdict::Unreachable,
            _ => ProbeVerdict::Inconclusive,
        }
    }
}

/// The probing client: owns the unique-label generator and the ethics
/// guard, and drives transactions against the world's hosts.
///
/// Every probe draws its randomness from a stream forked off the suite's
/// base RNG by the probe's full identity — host, day, test, replayed
/// connection count, and an occurrence counter for repeats. A host's
/// k-th identical probe therefore rolls identical dice no matter how
/// hosts are interleaved on one worker or partitioned across many,
/// which is the property the sharded campaign engine's shard-count
/// invariance rests on.
pub struct Prober<'w> {
    pop: &'w dyn Population,
    /// The per-campaign suite label (§5.1: unique per test suite).
    pub suite: String,
    source_ip: IpAddr,
    ctx: ProbeContext,
    base_rng: SimRng,
    rng: SimRng,
    /// Root for per-host fault-window materialisation; depends only on
    /// the world seed and suite, so all shards agree on which hosts blink.
    fault_rng: SimRng,
    ethics: EthicsGuard,
    options: ProbeOptions,
    metrics: Metrics,
    next_id: u64,
    occurrences: HashMap<(u32, u16, u8, u32), u64>,
}

impl<'w> Prober<'w> {
    /// A prober for `pop` with the given suite label, probing through
    /// the population's shared context.
    pub fn new(pop: &'w dyn Population, suite: &str) -> Prober<'w> {
        Prober::with_context(pop, suite, ProbeContext::shared(pop), MAX_CONCURRENT)
    }

    /// A prober probing through an explicit context with an explicit
    /// concurrency budget (the sharded engine splits [`MAX_CONCURRENT`]
    /// across its workers so the fleet-wide cap still holds).
    ///
    /// The base RNG depends only on the world seed and suite — never on
    /// the context or budget — so probers on different shards draw from
    /// the same per-probe streams.
    pub fn with_context(
        pop: &'w dyn Population,
        suite: &str,
        ctx: ProbeContext,
        max_concurrent: usize,
    ) -> Prober<'w> {
        Prober::with_options(pop, suite, ctx, max_concurrent, ProbeOptions::default())
    }

    /// [`Prober::with_context`] with an explicit fault profile and retry
    /// policy. The default options inject nothing and never retry.
    pub fn with_options(
        pop: &'w dyn Population,
        suite: &str,
        ctx: ProbeContext,
        max_concurrent: usize,
        options: ProbeOptions,
    ) -> Prober<'w> {
        let base_rng = pop.runtime().fork_rng(&format!("prober-{suite}"));
        Prober {
            pop,
            suite: suite.to_string(),
            source_ip: "203.0.113.25".parse().expect("static address"),
            ethics: EthicsGuard::with_budget(ctx.clock.clone(), max_concurrent),
            rng: base_rng.fork("id-sequence"),
            fault_rng: base_rng.fork("fault-injector"),
            base_rng,
            ctx,
            options,
            metrics: Metrics::new(),
            next_id: 0,
            occurrences: HashMap::new(),
        }
    }

    /// The context this prober probes through.
    pub fn context(&self) -> &ProbeContext {
        &self.ctx
    }

    /// The fault/retry options this prober runs under.
    pub fn options(&self) -> &ProbeOptions {
        &self.options
    }

    /// The prober's network counters (DNS traffic, injected faults,
    /// retries). Per-prober, so shard snapshots merge into campaign
    /// totals without double counting.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The context's compiled-policy cache tallies (zeros when this
    /// prober runs interpretively). Shard-local, merged like any other
    /// per-worker counter — and deliberately kept out of
    /// [`MetricsSnapshot`](spfail_netsim::MetricsSnapshot), which must
    /// stay identical cache on or off.
    pub fn policy_cache_stats(&self) -> PolicyCacheStats {
        self.ctx
            .policy_cache
            .as_ref()
            .map(|cache| cache.lock().stats())
            .unwrap_or_default()
    }

    /// The ethics guard (for audits).
    pub fn ethics(&self) -> &EthicsGuard {
        &self.ethics
    }

    /// Mutable ethics access (campaigns call `begin_sweep`).
    pub fn ethics_mut(&mut self) -> &mut EthicsGuard {
        &mut self.ethics
    }

    /// The probe-repetition counters in canonical (sorted) order, for a
    /// checkpoint. Together with the ethics guard's export, the metrics
    /// snapshot, and the context clock, these counters are the whole of
    /// a prober's durable state: every other field is a pure function of
    /// the world seed and the suite label.
    pub(crate) fn occurrences_export(&self) -> Vec<((u32, u16, u8, u32), u64)> {
        let mut entries: Vec<_> = self.occurrences.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        entries
    }

    /// Restore the probe-repetition counters written by
    /// [`Prober::occurrences_export`].
    pub(crate) fn occurrences_restore(
        &mut self,
        entries: impl IntoIterator<Item = ((u32, u16, u8, u32), u64)>,
    ) {
        self.occurrences = entries.into_iter().collect();
    }

    /// Drop the probe-repetition counters of every host not in `keep`
    /// (sorted). Sound only when those hosts will never be probed again
    /// on this prober — the streaming sweep prunes to the tracked set,
    /// whose future probes are the only ones the counters can affect.
    pub(crate) fn occurrences_retain(&mut self, keep: &[HostId]) {
        self.occurrences
            .retain(|&(h, _, _, _), _| keep.binary_search(&HostId(h)).is_ok());
    }

    /// Replace the context's compiled-policy cache with `cache` — the
    /// streaming handoff passes the sweep's warm cache to the rebuilt
    /// round worker, mirroring the eager sequential engine's single
    /// long-lived prober.
    pub(crate) fn set_policy_cache(&mut self, cache: Option<PolicyCacheHandle>) {
        self.ctx.policy_cache = cache;
    }

    /// Whether the *next* probe with this exact identity would hit the
    /// host's flaky roll, without issuing it.
    ///
    /// Probe randomness is derived from the probe's identity (see
    /// [`Prober::probe`]), not drawn from a consuming stream, so the
    /// incremental round engine can replay the first draws of the
    /// attempt it is about to skip: the rng fork, the id draw, and the
    /// flaky roll below mirror the opening of `probe_attempt` exactly.
    /// A `true` answer means the attempt would fail transiently (and
    /// possibly retry), so the host must be probed for real; `false`
    /// means the attempt proceeds to the host's deterministic behaviour.
    pub(crate) fn would_flake(
        &self,
        host: HostId,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> bool {
        let test_tag = test.tag();
        let occurrence = self
            .occurrences
            .get(&(host.0, day, test_tag, extra_connections))
            .copied()
            .unwrap_or(0);
        let mut rng = self.base_rng.fork(&format!(
            "probe-h{}-d{day}-t{test_tag}-x{extra_connections}-n{occurrence}",
            host.0
        ));
        let _ = Self::probe_id(&mut rng, &self.suite);
        rng.chance(self.pop.host(host).profile.flaky)
    }

    /// Generate the next unique probe id: a 4–5 character alphanumeric
    /// label that never collides with the fingerprint's fixed labels.
    /// The embedded base-36 counter guarantees uniqueness for the first
    /// 46 656 ids without relying on the random prefix.
    pub fn next_probe_id(&mut self) -> String {
        loop {
            self.next_id += 1;
            let len = 4 + (self.next_id % 2) as usize;
            let id = format!(
                "{}{}",
                self.rng.alnum_label(len - 3),
                base36(self.next_id % 46_656)
            );
            if !RESERVED_ID_LABELS.contains(&id.as_str()) && id != self.suite {
                return id;
            }
        }
    }

    /// Probe one host with one test variant as of measurement day `day`.
    ///
    /// `extra_connections` is how many probe connections this host has
    /// already received across the campaign (its blacklisting counter).
    ///
    /// The outcome is a pure function of `(host, day, test,
    /// extra_connections)` and how many times this prober has issued
    /// that exact probe before — repeating a probe rolls fresh (but
    /// reproducible) dice, and no other host's probes perturb it.
    pub fn probe(
        &mut self,
        host: HostId,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> ProbeOutcome {
        // One `probe` call = one trace record; events inside are stamped
        // relative to this instant, which is the property that makes a
        // sharded trace merge byte-identical to the sequential one.
        self.ctx
            .tracer
            .begin_probe(self.ctx.clock.now(), host.0, day, test.tag(), extra_connections);
        let outcome = self.probe_attempt(host, day, test, extra_connections);
        self.ctx.tracer.end_probe(self.ctx.clock.now());
        outcome
    }

    /// One attempt, without opening a trace record of its own —
    /// [`Prober::probe_with_retry`] wraps a whole retried sequence in a
    /// single probe span with the attempts and backoffs as children.
    fn probe_attempt(
        &mut self,
        host: HostId,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> ProbeOutcome {
        let record = self.pop.host(host);
        self.probe_attempt_record(host, record, day, test, extra_connections)
    }

    /// One attempt with the host's record passed in instead of looked up
    /// — the streamed sweep's spelling, where the record exists only for
    /// the lifetime of its synthesis step and the prober's population
    /// holds no records at all.
    fn probe_attempt_record(
        &mut self,
        host: HostId,
        record: &HostRecord,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> ProbeOutcome {
        let test_tag = test.tag();
        let occurrence = {
            let counter = self
                .occurrences
                .entry((host.0, day, test_tag, extra_connections))
                .or_insert(0);
            let occurrence = *counter;
            *counter += 1;
            occurrence
        };
        let mut rng = self.base_rng.fork(&format!(
            "probe-h{}-d{day}-t{test_tag}-x{extra_connections}-n{occurrence}",
            host.0
        ));
        let id = Self::probe_id(&mut rng, &self.suite);

        // Transient flakiness: the host is unreachable this round. The
        // failed attempt is not free — it consumes the connect timeout
        // on the simulated clock, like any unreachable peer.
        if rng.chance(record.profile.flaky) {
            self.ctx.tracer.enter(self.ctx.clock.now(), SpanKind::Fault);
            self.ctx.clock.advance(CONNECT_TIMEOUT);
            self.ctx
                .tracer
                .exit(self.ctx.clock.now(), SpanKind::Fault, "flaky");
            return ProbeOutcome {
                host,
                test,
                id,
                transaction: Some(TransactionOutcome::Transient {
                    stage: "connect",
                    code: 0,
                }),
                classification: Classification::default(),
                dns_fault: None,
            };
        }

        // Injected reachability window: evaluated at the probe's
        // scheduled day, never at `clock.now()` — the sequential engine
        // shares one clock across all hosts while each shard has its
        // own, and only the scheduled day is common to both.
        if let Some(window) = self
            .options
            .faults
            .window_for_host(&self.fault_rng, u64::from(host.0))
        {
            if !window.is_open(Timeline::day_to_time(day)) {
                self.metrics.inc_window_closed_probes();
                self.ctx.tracer.enter(self.ctx.clock.now(), SpanKind::Fault);
                self.ctx.clock.advance(CONNECT_TIMEOUT);
                self.ctx
                    .tracer
                    .exit(self.ctx.clock.now(), SpanKind::Fault, "window_closed");
                return ProbeOutcome {
                    host,
                    test,
                    id,
                    transaction: Some(TransactionOutcome::Transient {
                        stage: "connect",
                        code: 0,
                    }),
                    classification: Classification::default(),
                    dns_fault: None,
                };
            }
        }

        // Injected SMTP-path faults, rolled from the probe's identity
        // stream (zero-probability plans draw nothing, preserving the
        // stream byte-for-byte).
        match self.options.faults.smtp.smtp_outcome(&mut rng) {
            FaultOutcome::TempFailed => {
                self.metrics.inc_smtp_tempfails();
                let now = self.ctx.clock.now();
                self.ctx.tracer.enter(now, SpanKind::Fault);
                self.ctx.tracer.exit(now, SpanKind::Fault, "smtp_tempfail");
                return ProbeOutcome {
                    host,
                    test,
                    id,
                    transaction: Some(TransactionOutcome::Transient {
                        stage: "connect",
                        code: 421,
                    }),
                    classification: Classification::default(),
                    dns_fault: None,
                };
            }
            FaultOutcome::Reset => {
                self.metrics.inc_connection_resets();
                let now = self.ctx.clock.now();
                self.ctx.tracer.enter(now, SpanKind::Fault);
                self.ctx.tracer.exit(now, SpanKind::Fault, "smtp_reset");
                return ProbeOutcome {
                    host,
                    test,
                    id,
                    transaction: Some(TransactionOutcome::ConnectionReset),
                    classification: Classification::default(),
                    dns_fault: None,
                };
            }
            _ => {}
        }

        // When DNS faults are active the MTA's stream is salted with the
        // probe identity, so a retried probe re-rolls the resolver's
        // fault dice instead of replaying the same timeout forever.
        let dns_salt = format!(
            "dns-h{}-d{day}-t{test_tag}-x{extra_connections}-n{occurrence}",
            host.0
        );
        let mut mta = self.pop.runtime().build_mta_record(
            host,
            record,
            day,
            self.ctx.directory.clone(),
            self.ctx.clock.clone(),
            MtaInstrumentation {
                dns_faults: self.options.faults.dns,
                metrics: self.metrics.clone(),
                reroll: self
                    .options
                    .faults
                    .dns
                    .is_active()
                    .then_some(dns_salt.as_str()),
                tracer: self.ctx.tracer.clone(),
                policy_cache: self.ctx.policy_cache.clone(),
            },
        );
        // Restore the host's cross-round connection count so blacklisting
        // thresholds apply campaign-wide, not per-instance.
        for _ in 0..extra_connections {
            let _ = mta.connect(self.source_ip); // lint:allow(ethics-probe-budget) replays the historical connection counter against a fresh Mta instance; no new traffic reaches any host
        }

        let log_start = self.ctx.query_log.len();
        let sender_domain = format!(
            "{}.{}.{}",
            id,
            self.suite,
            self.pop.runtime().zone_origin.to_ascii()
        );
        // The MTA's resolver reports into this prober's metrics; the
        // delta across the transaction tells us whether injected DNS
        // faults disturbed this particular probe's measurement.
        let dns_before = self.options.faults.dns.is_active().then(|| {
            let snap = self.metrics.snapshot();
            (snap.dns_timeouts, snap.dns_servfails)
        });
        let transaction =
            self.run_transaction(&mut mta, IpAddr::V4(record.ip), &sender_domain, test);
        let dns_fault = dns_before.and_then(|(timeouts, servfails)| {
            let snap = self.metrics.snapshot();
            if snap.dns_timeouts > timeouts {
                Some(ProbeError::DnsTimeout)
            } else if snap.dns_servfails > servfails {
                Some(ProbeError::DnsServFail)
            } else {
                None
            }
        });
        let entries = self.ctx.query_log.entries_from(log_start);
        let classification = classify(&entries, &id, &self.suite, &self.pop.runtime().zone_origin);

        ProbeOutcome {
            host,
            test,
            id,
            transaction,
            classification,
            dns_fault,
        }
    }

    /// [`Prober::probe`] under the prober's [`RetryPolicy`]: retry while
    /// the outcome maps to a *transient* [`ProbeError`], attempts remain,
    /// and the per-probe deadline (measured on the simulated clock from
    /// the first attempt) has not passed. Returns the final outcome and
    /// how many attempts ran.
    ///
    /// Each retry waits out a jittered exponential backoff drawn from a
    /// stream forked off the probe's identity, and repeats the probe with
    /// the same arguments — the occurrence counter gives the retry fresh
    /// (but reproducible) dice. Under [`RetryPolicy::NONE`] this is
    /// exactly one `probe` call.
    pub fn probe_with_retry(
        &mut self,
        host: HostId,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> (ProbeOutcome, u32) {
        let record = self.pop.host(host);
        self.probe_with_retry_record(host, record, day, test, extra_connections)
    }

    /// [`Prober::probe_with_retry`] with the host's record passed in
    /// instead of looked up — the streamed sweep probes each host while
    /// its record exists, over a population that retains nothing.
    pub fn probe_with_retry_record(
        &mut self,
        host: HostId,
        record: &HostRecord,
        day: u16,
        test: ProbeTest,
        extra_connections: u32,
    ) -> (ProbeOutcome, u32) {
        let started = self.ctx.clock.now();
        // The whole retried sequence is one probe record: attempts and
        // their `retry_wait` backoffs are children of a single span.
        self.ctx
            .tracer
            .begin_probe(started, host.0, day, test.tag(), extra_connections);
        let mut outcome = self.probe_attempt_record(host, record, day, test, extra_connections);
        let mut attempts = 1u32;
        let max_attempts = self.options.retry.max_attempts.max(1);
        while attempts < max_attempts {
            let Some(err) = outcome.probe_error() else {
                break;
            };
            if !err.is_transient() {
                break;
            }
            if let Some(deadline) = self.options.retry.deadline {
                if self.ctx.clock.now().since(started) >= deadline {
                    break;
                }
            }
            let mut backoff_rng = self.base_rng.fork(&format!(
                "backoff-h{}-d{day}-t{}-x{extra_connections}-a{attempts}",
                host.0,
                test.tag()
            ));
            self.ctx
                .tracer
                .enter(self.ctx.clock.now(), SpanKind::RetryWait);
            self.ctx
                .clock
                .advance(self.options.retry.backoff(attempts, &mut backoff_rng));
            self.ctx
                .tracer
                .exit(self.ctx.clock.now(), SpanKind::RetryWait, "backoff");
            self.metrics.inc_probe_retries();
            outcome = self.probe_attempt_record(host, record, day, test, extra_connections);
            attempts += 1;
        }
        if attempts > 1 && outcome.spf_measured() {
            self.metrics.inc_probes_recovered();
        }
        self.ctx.tracer.end_probe(self.ctx.clock.now());
        (outcome, attempts)
    }

    /// A probe id drawn from the probe's own stream: a 4–5 character
    /// alphanumeric label avoiding the fingerprint's fixed labels. Ids
    /// only need to be unique within one probe's query-log window (each
    /// probe classifies only the entries it appended itself), so two
    /// different probes drawing the same label is harmless.
    fn probe_id(rng: &mut SimRng, suite: &str) -> String {
        loop {
            let len = 4 + rng.below(2) as usize;
            let id = rng.alnum_label(len);
            if !RESERVED_ID_LABELS.contains(&id.as_str()) && id != suite {
                return id;
            }
        }
    }

    fn run_transaction(
        &mut self,
        mta: &mut Mta,
        ip: IpAddr,
        sender_domain: &str,
        test: ProbeTest,
    ) -> Option<TransactionOutcome> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            // The ethics admit wait stays outside the session span: it is
            // contact spacing, not conversation time.
            self.ethics.admit(ip);
            self.ctx
                .tracer
                .enter(self.ctx.clock.now(), SpanKind::SmtpSession);
            let outcome = self.run_once(mta, sender_domain, test);
            self.ctx.tracer.exit(
                self.ctx.clock.now(),
                SpanKind::SmtpSession,
                outcome.as_ref().map_or("refused", TransactionOutcome::label),
            );
            self.ethics.release(ip);
            match &outcome {
                // Greylisting: wait 8 minutes and retry once (§6.1).
                Some(TransactionOutcome::Transient { code, .. })
                    if (*code == 450 || *code == 451) && attempt == 1 =>
                {
                    self.ctx
                        .tracer
                        .enter(self.ctx.clock.now(), SpanKind::GreylistWait);
                    self.ethics.greylist_wait(ip);
                    self.ctx.tracer.exit(
                        self.ctx.clock.now(),
                        SpanKind::GreylistWait,
                        "greylisted",
                    );
                }
                _ => return outcome,
            }
        }
    }

    /// One SMTP conversation. Returns `None` when TCP itself was refused.
    fn run_once(
        &mut self,
        mta: &mut Mta,
        sender_domain: &str,
        test: ProbeTest,
    ) -> Option<TransactionOutcome> {
        debug_assert!(
            self.ethics.holds_slot(),
            "run_once outside an admit/release bracket: all SMTP traffic must hold an ethics slot"
        );
        let banner = match mta.connect(self.source_ip) {
            ConnectDecision::Refused => return None,
            ConnectDecision::RejectedBanner(reply) => reply,
            ConnectDecision::Proceed => {
                let plan = self.plan(sender_domain, test);
                let (mut session, banner) = mta.open_session();
                let mut runner = ClientRunner::new(plan);
                let mut action = runner.on_reply(&banner);
                loop {
                    match action {
                        ClientAction::Send(cmd) => {
                            let reply = session.handle(&cmd);
                            action = runner.on_reply(&reply);
                        }
                        ClientAction::SendMessage(body) => {
                            let reply = session.handle_message(&body);
                            action = runner.on_reply(&reply);
                        }
                        ClientAction::HangUp(outcome) | ClientAction::Finish(outcome) => {
                            // Best-effort QUIT on clean finishes.
                            if session.state() != SessionState::Closed {
                                let _ = session.handle(&spfail_smtp::command::Command::Quit);
                            }
                            return Some(outcome);
                        }
                    }
                }
            }
        };
        // A rejecting banner concludes the transaction immediately.
        let plan = self.plan(sender_domain, test);
        let mut runner = ClientRunner::new(plan);
        match runner.on_reply(&banner) {
            ClientAction::Finish(outcome) | ClientAction::HangUp(outcome) => Some(outcome),
            _ => Some(TransactionOutcome::RejectedAtConnect(banner.code)),
        }
    }

    fn plan(&self, sender_domain: &str, test: ProbeTest) -> TransactionPlan {
        // The recipient ladder is the same for every probe; build it once
        // and hand out shared-part clones (addresses are `Arc<str>` pairs).
        static LADDER: std::sync::OnceLock<Vec<EmailAddress>> = std::sync::OnceLock::new();
        let sender = EmailAddress::new("mmj7yzdm0tbk", sender_domain)
            .expect("probe sender addresses are valid by construction");
        let recipients = LADDER
            .get_or_init(|| {
                USERNAME_LADDER
                    .iter()
                    .map(|user| {
                        EmailAddress::new(user, "recipient.invalid")
                            .expect("ladder usernames are valid")
                    })
                    .collect()
            })
            .clone();
        TransactionPlan {
            helo_domain: "probe.dns-lab.org".to_string(),
            sender,
            recipients,
            step: test.step(),
        }
    }
}

fn base36(mut n: u64) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::with_capacity(3);
    for _ in 0..3 {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_netsim::{FaultPlan, FlakyWindow};
    use spfail_world::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(123))
    }

    #[test]
    fn probe_ids_are_unique_and_safe() {
        let w = world();
        let mut prober = Prober::new(&w, "s01");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let id = prober.next_probe_id();
            assert!((4..=5).contains(&id.len()), "id length: {id}");
            assert!(!RESERVED_ID_LABELS.contains(&id.as_str()));
            assert!(seen.insert(id), "ids must be unique");
        }
    }

    #[test]
    fn vulnerable_host_is_detected_remotely() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        // Pick the right test variant for the host's validation stage.
        let mut prober = Prober::new(&w, "s01");
        let nomsg = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        let outcome = if nomsg.spf_measured() {
            nomsg
        } else {
            prober.probe(host, 0, ProbeTest::BlankMsg, 0)
        };
        // A flaky roll may still have interfered; retry a bounded number
        // of times like the campaign does.
        let mut outcome = outcome;
        for _ in 0..5 {
            if outcome.spf_measured() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        }
        assert!(outcome.spf_measured(), "vulnerable host must be measurable");
        assert!(outcome.classification.vulnerable());
    }

    #[test]
    fn refused_host_yields_refused_outcome() {
        let w = world();
        let host = (0..w.hosts.len() as u32)
            .map(HostId)
            .find(|&h| {
                matches!(
                    w.host(h).profile.connect,
                    spfail_mta::ConnectPolicy::Refuse
                ) && w.host(h).profile.flaky == 0.0
            })
            .or_else(|| {
                (0..w.hosts.len() as u32).map(HostId).find(|&h| {
                    matches!(
                        w.host(h).profile.connect,
                        spfail_mta::ConnectPolicy::Refuse
                    )
                })
            })
            .expect("some refusing host");
        let mut prober = Prober::new(&w, "s02");
        let mut outcome = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        for _ in 0..5 {
            if outcome.refused() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::NoMsg, 0);
        }
        assert!(outcome.refused());
        assert!(!outcome.spf_measured());
    }

    #[test]
    fn blacklisted_host_fails_smtp() {
        let w = world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| w.host(h).profile.blacklist_after.is_some())
            .expect("some blacklisting host");
        let threshold = w.host(host).profile.blacklist_after.unwrap();
        let mut prober = Prober::new(&w, "s03");
        let mut outcome = prober.probe(host, 20, ProbeTest::NoMsg, threshold + 1);
        for _ in 0..5 {
            if outcome.smtp_failure() {
                break;
            }
            outcome = prober.probe(host, 20, ProbeTest::NoMsg, threshold + 1);
        }
        assert!(outcome.smtp_failure());
        assert!(!outcome.spf_measured());
    }

    #[test]
    fn patched_host_measures_compliant_after_patch_day() {
        let w = world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| {
                let p = &w.host(h).profile;
                p.patch_day.is_some_and(|d| d <= 126)
                    && p.blacklist_after.is_none()
                    && p.quirk == spfail_mta::SmtpQuirk::None
                    && p.connect == spfail_mta::ConnectPolicy::Accept
                    && p.impls.len() == 1
            })
            .expect("a cleanly patching host");
        let patch_day = w.host(host).profile.patch_day.unwrap();
        let mut prober = Prober::new(&w, "s04");
        let probe_once = |prober: &mut Prober, day: u16| {
            let mut outcome = prober.probe(host, day, ProbeTest::NoMsg, 0);
            if !outcome.spf_measured() {
                outcome = prober.probe(host, day, ProbeTest::BlankMsg, 0);
            }
            for _ in 0..6 {
                if outcome.spf_measured() {
                    break;
                }
                outcome = prober.probe(host, day, ProbeTest::BlankMsg, 0);
            }
            outcome
        };
        let before = probe_once(&mut prober, patch_day.saturating_sub(1));
        assert!(before.classification.vulnerable());
        let after = probe_once(&mut prober, patch_day);
        assert!(after.spf_measured());
        assert!(!after.classification.vulnerable());
        assert!(after.classification.compliant_only());
    }

    #[test]
    fn greylisting_host_is_retried_and_measured() {
        let w = world();
        // Find a greylisting SPF host that otherwise behaves. It must
        // validate at the DATA stage: an OnMailFrom host rejects the
        // probe's failing SPF before RCPT, so its greylisting never
        // engages.
        let host = (0..w.hosts.len() as u32).map(HostId).find(|&h| {
            let p = &w.host(h).profile;
            p.greylist
                && p.spf_stage == spfail_mta::SpfStage::OnData
                && p.connect == spfail_mta::ConnectPolicy::Accept
                && p.quirk == spfail_mta::SmtpQuirk::None
                && p.rcpt_reject_first_n == 0
        });
        let Some(host) = host else {
            return; // tiny worlds may lack one; other tests cover the logic
        };
        let mut prober = Prober::new(&w, "s05");
        let mut outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        for _ in 0..6 {
            if outcome.spf_measured() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        }
        assert!(outcome.spf_measured());
        assert!(prober.ethics().audit().greylist_waits >= 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: SimDuration::from_secs(10),
            max_backoff: SimDuration::from_secs(40),
            jitter: 0.0,
            deadline: None,
        };
        let mut rng = SimRng::new(7);
        assert_eq!(policy.backoff(1, &mut rng), SimDuration::from_secs(10));
        assert_eq!(policy.backoff(2, &mut rng), SimDuration::from_secs(20));
        assert_eq!(policy.backoff(3, &mut rng), SimDuration::from_secs(40));
        // Capped from here on.
        assert_eq!(policy.backoff(4, &mut rng), SimDuration::from_secs(40));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::standard();
        let base = policy.base_backoff.as_micros() as f64;
        let mut a = SimRng::new(99).fork("backoff");
        let mut b = SimRng::new(99).fork("backoff");
        for attempt in 1..=3 {
            let da = policy.backoff(attempt, &mut a);
            let db = policy.backoff(attempt, &mut b);
            assert_eq!(da, db, "same stream, same delay");
            let nominal = base * f64::from(1u32 << (attempt - 1));
            let nominal = nominal.min(policy.max_backoff.as_micros() as f64);
            let lo = nominal * (1.0 - policy.jitter / 2.0);
            let hi = nominal * (1.0 + policy.jitter / 2.0);
            let got = da.as_micros() as f64;
            assert!(got >= lo - 1.0 && got <= hi + 1.0, "delay {got} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn verdicts_distinguish_unreachable_from_inconclusive() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        let mut prober = Prober::new(&w, "s06");
        let mut outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        for _ in 0..6 {
            if outcome.spf_measured() {
                break;
            }
            outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        }
        assert_eq!(outcome.verdict(), ProbeVerdict::Vulnerable);

        // A tempfail is transient: the host was reachable but the probe is
        // unreachable-for-now rather than conclusively unmeasurable.
        let faulty = ProbeOptions {
            faults: FaultProfile {
                smtp: FaultPlan::smtp_tempfail(1.0),
                ..FaultProfile::NONE
            },
            retry: RetryPolicy::NONE,
        };
        let ctx = ProbeContext::isolated(&w);
        let mut prober = Prober::with_options(&w, "s07", ctx, 64, faulty);
        let outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        assert!(!outcome.spf_measured());
        assert_eq!(outcome.probe_error(), Some(ProbeError::SmtpTempFail(421)));
        assert_eq!(outcome.verdict(), ProbeVerdict::Unreachable);
    }

    #[test]
    fn retry_recovers_probes_lost_to_dns_timeouts() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        // Heavy loss: most lookups time out end-to-end, so many probes
        // fail to measure on their first attempt.
        let faults = FaultProfile {
            dns: FaultPlan::dns_timeout(0.9),
            ..FaultProfile::NONE
        };
        let no_retry = ProbeOptions {
            faults,
            retry: RetryPolicy::NONE,
        };
        let with_retry = ProbeOptions {
            faults,
            retry: RetryPolicy {
                max_attempts: 5,
                deadline: None,
                ..RetryPolicy::standard()
            },
        };
        let measure = |opts: ProbeOptions, suite: &str| {
            let ctx = ProbeContext::isolated(&w);
            let mut prober = Prober::with_options(&w, suite, ctx, 64, opts);
            let mut measured = 0u32;
            for _ in 0..12 {
                let (outcome, _) = prober.probe_with_retry(host, 0, ProbeTest::BlankMsg, 0);
                if outcome.spf_measured() {
                    measured += 1;
                }
            }
            (measured, prober.metrics().snapshot())
        };
        let (bare, bare_metrics) = measure(no_retry, "s08");
        let (retried, retry_metrics) = measure(with_retry, "s08");
        assert!(
            retried >= bare,
            "retry must not lose probes: {retried} < {bare}"
        );
        assert_eq!(bare_metrics.probe_retries, 0);
        assert!(retry_metrics.probe_retries > 0, "faults should trigger retries");
        assert!(
            retry_metrics.probes_recovered > 0,
            "some retried probes should recover"
        );
    }

    #[test]
    fn retry_respects_deadline_and_attempt_budget() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        let faults = FaultProfile {
            smtp: FaultPlan::smtp_tempfail(1.0),
            ..FaultProfile::NONE
        };
        // Attempt budget binds first.
        let opts = ProbeOptions {
            faults,
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::standard()
            },
        };
        let ctx = ProbeContext::isolated(&w);
        let mut prober = Prober::with_options(&w, "s09", ctx, 64, opts);
        let (outcome, attempts) = prober.probe_with_retry(host, 0, ProbeTest::BlankMsg, 0);
        assert_eq!(attempts, 3);
        assert!(!outcome.spf_measured());
        assert_eq!(outcome.verdict(), ProbeVerdict::Unreachable);

        // A zero deadline stops after the first attempt even though the
        // attempt budget would allow more.
        let opts = ProbeOptions {
            faults,
            retry: RetryPolicy {
                max_attempts: 5,
                deadline: Some(SimDuration::ZERO),
                ..RetryPolicy::standard()
            },
        };
        let ctx = ProbeContext::isolated(&w);
        let mut prober = Prober::with_options(&w, "s10", ctx, 64, opts);
        let (_, attempts) = prober.probe_with_retry(host, 0, ProbeTest::BlankMsg, 0);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn window_closed_hosts_consume_timeout_time() {
        let w = world();
        let host = w.initially_vulnerable_hosts()[0];
        // A window that is always closed.
        let opts = ProbeOptions {
            faults: FaultProfile {
                flaky_fraction: 1.0,
                window: Some(FlakyWindow::new(SimDuration::from_mins(60), 0.0)),
                ..FaultProfile::NONE
            },
            retry: RetryPolicy::NONE,
        };
        let ctx = ProbeContext::isolated(&w);
        let mut prober = Prober::with_options(&w, "s11", ctx, 64, opts);
        let before = prober.ctx.clock.now();
        let outcome = prober.probe(host, 0, ProbeTest::BlankMsg, 0);
        let elapsed = prober.ctx.clock.now().since(before);
        assert!(!outcome.spf_measured());
        assert_eq!(outcome.verdict(), ProbeVerdict::Unreachable);
        assert!(
            elapsed >= CONNECT_TIMEOUT,
            "a dark host must cost timeout time, got {elapsed:?}"
        );
        assert!(prober.metrics().snapshot().window_closed_probes >= 1);
    }
}
