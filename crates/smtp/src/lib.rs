//! SMTP substrate for the SPFail reproduction (RFC 5321 subset).
//!
//! The paper's probes are ordinary SMTP conversations: connect, `EHLO`,
//! `MAIL FROM`, `RCPT TO`, and then either abort before `DATA` completes
//! (the **NoMsg** test) or transmit an entirely empty message (the
//! **BlankMsg** test). This crate implements the protocol pieces both sides
//! need, sans-IO:
//!
//! * [`address`] — email addresses and reverse-paths.
//! * [`command`] — client commands, parsing and formatting.
//! * [`reply`] — server replies with standard codes.
//! * [`session`] — the server-side state machine with policy hooks.
//! * [`client`] — transaction plans the prober executes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod client;
pub mod command;
pub mod reply;
pub mod session;

pub use address::{AddressError, EmailAddress};
pub use client::{TransactionOutcome, TransactionPlan, TransactionStep};
pub use command::Command;
pub use reply::{Reply, ReplyCategory};
pub use session::{ServerPolicy, ServerSession, SessionEvent, SessionState};
