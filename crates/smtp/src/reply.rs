//! SMTP server replies.

use std::fmt;

/// The broad class of a reply code (its first digit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCategory {
    /// 2xx — success.
    Success,
    /// 3xx — intermediate (354 after `DATA`).
    Intermediate,
    /// 4xx — transient failure (greylisting lives here).
    TransientFailure,
    /// 5xx — permanent failure.
    PermanentFailure,
    /// Anything else (never sent by a conforming server).
    Unknown,
}

/// A server reply: a three-digit code plus one or more text lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The reply code, e.g. 250.
    pub code: u16,
    /// Text lines; multi-line replies use `250-...` continuation on the wire.
    pub lines: Vec<String>,
}

impl Reply {
    /// A single-line reply.
    pub fn new(code: u16, text: &str) -> Reply {
        Reply {
            code,
            lines: vec![text.to_string()],
        }
    }

    /// 220 service-ready banner.
    pub fn banner(host: &str) -> Reply {
        Reply::new(220, &format!("{host} ESMTP ready"))
    }

    /// 250 OK.
    pub fn ok() -> Reply {
        Reply::new(250, "OK")
    }

    /// 250 greeting response to EHLO, advertising no extensions.
    pub fn ehlo_ok(host: &str) -> Reply {
        Reply {
            code: 250,
            lines: vec![
                format!("{host} greets you"),
                format!("SIZE {}", crate::session::MAX_MESSAGE_SIZE),
            ],
        }
    }

    /// 354 start-mail-input.
    pub fn start_mail_input() -> Reply {
        Reply::new(354, "Start mail input; end with <CRLF>.<CRLF>")
    }

    /// 221 closing.
    pub fn closing() -> Reply {
        Reply::new(221, "Bye")
    }

    /// 421 service not available (also used when blacklisting probers).
    pub fn service_unavailable() -> Reply {
        Reply::new(421, "Service not available, closing transmission channel")
    }

    /// 450 mailbox unavailable (greylisting).
    pub fn greylisted() -> Reply {
        Reply::new(450, "Greylisted, try again later")
    }

    /// 550 mailbox unavailable.
    pub fn mailbox_unavailable() -> Reply {
        Reply::new(550, "No such user here")
    }

    /// 550 rejected by SPF policy, in the style of real MTA rejections.
    pub fn spf_rejected(domain: &str) -> Reply {
        Reply::new(
            550,
            &format!("SPF check failed for {domain}: sender not authorized"),
        )
    }

    /// 503 bad sequence of commands.
    pub fn bad_sequence() -> Reply {
        Reply::new(503, "Bad sequence of commands")
    }

    /// 500 syntax error.
    pub fn syntax_error() -> Reply {
        Reply::new(500, "Syntax error, command unrecognized")
    }

    /// The category of this reply.
    pub fn category(&self) -> ReplyCategory {
        match self.code / 100 {
            2 => ReplyCategory::Success,
            3 => ReplyCategory::Intermediate,
            4 => ReplyCategory::TransientFailure,
            5 => ReplyCategory::PermanentFailure,
            _ => ReplyCategory::Unknown,
        }
    }

    /// Whether the reply is a success (2xx).
    pub fn is_positive(&self) -> bool {
        self.category() == ReplyCategory::Success
    }

    /// Whether the reply is any failure (4xx/5xx).
    pub fn is_failure(&self) -> bool {
        matches!(
            self.category(),
            ReplyCategory::TransientFailure | ReplyCategory::PermanentFailure
        )
    }

    /// Render the reply in wire form (with CRLFs and continuation dashes).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.lines.iter().enumerate() {
            let sep = if i + 1 == self.lines.len() { ' ' } else { '-' };
            out.push_str(&format!("{}{}{}\r\n", self.code, sep, line));
        }
        out
    }

    /// Parse a wire-form reply (one or more lines).
    pub fn parse(wire: &str) -> Option<Reply> {
        let mut code = None;
        let mut lines = Vec::new();
        for raw in wire.split("\r\n").filter(|l| !l.is_empty()) {
            if raw.len() < 4 {
                return None;
            }
            let this_code: u16 = raw[..3].parse().ok()?;
            if *code.get_or_insert(this_code) != this_code {
                return None;
            }
            lines.push(raw[4..].to_string());
        }
        Some(Reply {
            code: code?,
            lines,
        })
    }

    /// Approximate wire size, for link accounting.
    pub fn wire_size(&self) -> usize {
        self.to_wire().len()
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.lines.first().map_or("", |s| s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(Reply::ok().category(), ReplyCategory::Success);
        assert_eq!(
            Reply::start_mail_input().category(),
            ReplyCategory::Intermediate
        );
        assert_eq!(
            Reply::greylisted().category(),
            ReplyCategory::TransientFailure
        );
        assert_eq!(
            Reply::mailbox_unavailable().category(),
            ReplyCategory::PermanentFailure
        );
        assert!(Reply::ok().is_positive());
        assert!(Reply::greylisted().is_failure());
        assert!(!Reply::start_mail_input().is_failure());
    }

    #[test]
    fn single_line_wire_round_trip() {
        let r = Reply::new(250, "OK");
        assert_eq!(r.to_wire(), "250 OK\r\n");
        assert_eq!(Reply::parse(&r.to_wire()), Some(r));
    }

    #[test]
    fn multi_line_wire_round_trip() {
        let r = Reply::ehlo_ok("mx.example.com");
        let wire = r.to_wire();
        assert!(wire.starts_with("250-mx.example.com greets you\r\n"));
        assert!(wire.ends_with("250 SIZE 10485760\r\n"));
        assert_eq!(Reply::parse(&wire), Some(r));
    }

    #[test]
    fn mismatched_codes_rejected() {
        assert_eq!(Reply::parse("250-a\r\n550 b\r\n"), None);
        assert_eq!(Reply::parse("xx\r\n"), None);
        assert_eq!(Reply::parse(""), None);
    }

    #[test]
    fn display_shows_code_and_first_line() {
        assert_eq!(Reply::banner("mx.test").to_string(), "220 mx.test ESMTP ready");
    }
}
