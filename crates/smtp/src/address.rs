//! Email addresses and reverse-paths.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Errors parsing an email address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressError {
    /// No `@` separator.
    MissingAt,
    /// Empty or invalid local part.
    BadLocalPart,
    /// Empty or invalid domain.
    BadDomain,
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressError::MissingAt => write!(f, "missing '@'"),
            AddressError::BadLocalPart => write!(f, "invalid local part"),
            AddressError::BadDomain => write!(f, "invalid domain"),
        }
    }
}

impl std::error::Error for AddressError {}

/// An email address: `local@domain`.
///
/// The local part is kept verbatim (it is case-sensitive per RFC 5321);
/// the domain is compared case-insensitively.
/// Parts are shared (`Arc<str>`) so cloning an address — the probe
/// planner reuses a constant recipient ladder per transaction — is two
/// refcount bumps, not two re-allocations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmailAddress {
    local: Arc<str>,
    domain: Arc<str>,
}

impl EmailAddress {
    /// Construct from parts, validating both.
    pub fn new(local: &str, domain: &str) -> Result<EmailAddress, AddressError> {
        if local.is_empty()
            || !local
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-/=?^_`{|}~.".contains(&b))
        {
            return Err(AddressError::BadLocalPart);
        }
        if domain.is_empty()
            || domain.starts_with('.')
            || domain.ends_with('.')
            || domain.contains("..")
            || !domain
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
        {
            return Err(AddressError::BadDomain);
        }
        Ok(EmailAddress {
            local: Arc::from(local),
            domain: Arc::from(domain),
        })
    }

    /// Parse `local@domain`, with or without surrounding angle brackets.
    pub fn parse(s: &str) -> Result<EmailAddress, AddressError> {
        let s = s
            .strip_prefix('<')
            .and_then(|s| s.strip_suffix('>'))
            .unwrap_or(s);
        let (local, domain) = s.rsplit_once('@').ok_or(AddressError::MissingAt)?;
        EmailAddress::new(local, domain)
    }

    /// The local part, verbatim.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The domain, verbatim.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The domain, lowercased, for map keys.
    pub fn domain_lower(&self) -> String {
        self.domain.to_ascii_lowercase()
    }

    /// Render as a reverse-path for `MAIL FROM:`.
    pub fn as_path(&self) -> String {
        format!("<{}@{}>", self.local, self.domain)
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

impl FromStr for EmailAddress {
    type Err = AddressError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EmailAddress::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_and_bracketed() {
        let a = EmailAddress::parse("user@example.com").unwrap();
        assert_eq!(a.local(), "user");
        assert_eq!(a.domain(), "example.com");
        let b = EmailAddress::parse("<user@example.com>").unwrap();
        assert_eq!(a, b);
        assert_eq!(b.as_path(), "<user@example.com>");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(EmailAddress::parse("nodomain"), Err(AddressError::MissingAt));
        assert_eq!(
            EmailAddress::parse("@example.com"),
            Err(AddressError::BadLocalPart)
        );
        assert_eq!(EmailAddress::parse("user@"), Err(AddressError::BadDomain));
        assert_eq!(
            EmailAddress::parse("user@bad..domain"),
            Err(AddressError::BadDomain)
        );
        assert_eq!(
            EmailAddress::parse("user@.leading"),
            Err(AddressError::BadDomain)
        );
        assert_eq!(
            EmailAddress::parse("us er@example.com"),
            Err(AddressError::BadLocalPart)
        );
    }

    #[test]
    fn domain_lower_normalises() {
        let a = EmailAddress::parse("User@Example.COM").unwrap();
        assert_eq!(a.local(), "User");
        assert_eq!(a.domain_lower(), "example.com");
    }

    #[test]
    fn rsplit_handles_local_part_with_special_chars() {
        let a = EmailAddress::parse("a+b.c@example.com").unwrap();
        assert_eq!(a.local(), "a+b.c");
        assert_eq!(a.to_string(), "a+b.c@example.com");
    }

    #[test]
    fn probe_usernames_are_valid() {
        // The paper's curated username ladder must all parse.
        for user in [
            "mmj7yzdm0tbk",
            "noreply",
            "donotreply",
            "no-reply",
            "postmaster",
            "abuse",
            "admin",
            "administrator",
            "newsletters",
            "alerts",
            "info",
            "auto-confirm",
            "appointments",
            "service",
        ] {
            assert!(EmailAddress::new(user, "x.spf-test.dns-lab.org").is_ok());
        }
    }
}
