//! SMTP client commands.

use std::fmt;

use crate::address::EmailAddress;

/// The SMTP commands the measurement needs (RFC 5321 §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELO <domain>` — the legacy greeting.
    Helo(String),
    /// `EHLO <domain>` — the extended greeting.
    Ehlo(String),
    /// `MAIL FROM:<reverse-path>`.
    MailFrom(EmailAddress),
    /// `MAIL FROM:<>` — the null reverse-path used by bounce messages.
    MailFromNull,
    /// `RCPT TO:<forward-path>`.
    RcptTo(EmailAddress),
    /// `DATA`.
    Data,
    /// `RSET`.
    Rset,
    /// `NOOP`.
    Noop,
    /// `QUIT`.
    Quit,
}

impl Command {
    /// Parse one command line (without the trailing CRLF).
    pub fn parse(line: &str) -> Option<Command> {
        let line = line.trim_end_matches(['\r', '\n']);
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = strip_verb(line, &upper, "HELO") {
            return Some(Command::Helo(rest.trim().to_string()));
        }
        if let Some(rest) = strip_verb(line, &upper, "EHLO") {
            return Some(Command::Ehlo(rest.trim().to_string()));
        }
        if let Some(rest) = strip_verb(line, &upper, "MAIL FROM:") {
            let rest = rest.trim();
            if rest == "<>" {
                return Some(Command::MailFromNull);
            }
            return EmailAddress::parse(rest).ok().map(Command::MailFrom);
        }
        if let Some(rest) = strip_verb(line, &upper, "RCPT TO:") {
            return EmailAddress::parse(rest.trim()).ok().map(Command::RcptTo);
        }
        match upper.as_str() {
            "DATA" => Some(Command::Data),
            "RSET" => Some(Command::Rset),
            "NOOP" => Some(Command::Noop),
            "QUIT" => Some(Command::Quit),
            _ => None,
        }
    }

    /// The wire form of the command, without the trailing CRLF.
    pub fn to_line(&self) -> String {
        match self {
            Command::Helo(d) => format!("HELO {d}"),
            Command::Ehlo(d) => format!("EHLO {d}"),
            Command::MailFrom(a) => format!("MAIL FROM:{}", a.as_path()),
            Command::MailFromNull => "MAIL FROM:<>".to_string(),
            Command::RcptTo(a) => format!("RCPT TO:{}", a.as_path()),
            Command::Data => "DATA".to_string(),
            Command::Rset => "RSET".to_string(),
            Command::Noop => "NOOP".to_string(),
            Command::Quit => "QUIT".to_string(),
        }
    }

    /// Approximate wire size including CRLF, for link accounting.
    pub fn wire_size(&self) -> usize {
        self.to_line().len() + 2
    }
}

fn strip_verb<'a>(line: &'a str, upper: &str, verb: &str) -> Option<&'a str> {
    if upper.starts_with(verb) {
        Some(&line[verb.len()..])
    } else {
        None
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        let addr = EmailAddress::parse("mmj7yzdm0tbk@ab1c.s1.spf-test.dns-lab.org").unwrap();
        let commands = vec![
            Command::Helo("probe.dns-lab.org".into()),
            Command::Ehlo("probe.dns-lab.org".into()),
            Command::MailFrom(addr.clone()),
            Command::MailFromNull,
            Command::RcptTo(addr),
            Command::Data,
            Command::Rset,
            Command::Noop,
            Command::Quit,
        ];
        for cmd in commands {
            assert_eq!(Command::parse(&cmd.to_line()), Some(cmd));
        }
    }

    #[test]
    fn parsing_is_case_insensitive_in_verbs() {
        assert_eq!(
            Command::parse("ehlo Probe.example"),
            Some(Command::Ehlo("Probe.example".into()))
        );
        assert_eq!(Command::parse("data"), Some(Command::Data));
        assert_eq!(
            Command::parse("mail from:<a@b.c>"),
            Some(Command::MailFrom(EmailAddress::parse("a@b.c").unwrap()))
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(Command::parse("FOO BAR"), None);
        assert_eq!(Command::parse("MAIL FROM:<not-an-address>"), None);
        assert_eq!(Command::parse(""), None);
    }

    #[test]
    fn trailing_crlf_is_tolerated() {
        assert_eq!(Command::parse("QUIT\r\n"), Some(Command::Quit));
    }

    #[test]
    fn wire_size_includes_crlf() {
        assert_eq!(Command::Data.wire_size(), 6);
    }
}
