//! The server-side SMTP session state machine.
//!
//! A [`ServerSession`] enforces RFC 5321 command sequencing and delegates
//! every accept/reject decision to a [`ServerPolicy`]. The simulated MTAs
//! implement `ServerPolicy` to run SPF validation at the stage their
//! configuration dictates (at `MAIL FROM`, at end-of-data, or never) —
//! which is exactly the behavioural difference the paper's NoMsg/BlankMsg
//! probes distinguish.

use crate::address::EmailAddress;
use crate::command::Command;
use crate::reply::Reply;

/// Decisions a policy can make for a protocol event.
///
/// `None` means "accept with the default reply"; `Some(reply)` overrides,
/// and a 4xx/5xx reply rejects the event without advancing state.
pub trait ServerPolicy {
    /// Connection established. A failure reply here refuses service
    /// (the session closes immediately after it is sent).
    fn on_connect(&mut self) -> Option<Reply> {
        None
    }

    /// `HELO`/`EHLO` received.
    fn on_hello(&mut self, _client_domain: &str) -> Option<Reply> {
        None
    }

    /// `MAIL FROM` received. `sender` is `None` for the null reverse-path.
    fn on_mail_from(&mut self, _sender: Option<&EmailAddress>) -> Option<Reply> {
        None
    }

    /// `RCPT TO` received.
    fn on_rcpt_to(&mut self, _recipient: &EmailAddress) -> Option<Reply> {
        None
    }

    /// `DATA` received (before the 354 goes out).
    fn on_data_begin(&mut self) -> Option<Reply> {
        None
    }

    /// Message body received in full.
    fn on_message(&mut self, _body: &str) -> Option<Reply> {
        None
    }
}

/// A policy that accepts everything; useful in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct AcceptAll;

impl ServerPolicy for AcceptAll {}

/// Session states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Banner sent, no greeting yet.
    Connected,
    /// `HELO`/`EHLO` accepted.
    Greeted,
    /// `MAIL FROM` accepted.
    MailAccepted,
    /// At least one `RCPT TO` accepted.
    RcptAccepted,
    /// 354 sent; expecting message data.
    ReceivingData,
    /// `QUIT` processed or service refused.
    Closed,
}

/// Notable things that happened during the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A complete message was accepted for delivery.
    MessageAccepted {
        /// The envelope sender (`None` = null reverse-path).
        sender: Option<EmailAddress>,
        /// Accepted envelope recipients.
        recipients: Vec<EmailAddress>,
        /// The message body as transmitted.
        body: String,
    },
}

/// The message size limit advertised in the EHLO response and enforced at
/// end-of-data (RFC 1870).
pub const MAX_MESSAGE_SIZE: usize = 10_485_760;

/// A server-side SMTP session.
pub struct ServerSession<P: ServerPolicy> {
    hostname: String,
    policy: P,
    state: SessionState,
    sender: Option<EmailAddress>,
    sender_is_null: bool,
    recipients: Vec<EmailAddress>,
    events: Vec<SessionEvent>,
}

impl<P: ServerPolicy> ServerSession<P> {
    /// Open a session: runs the connect hook and returns the banner (or the
    /// refusal reply, in which case the session is already [`SessionState::Closed`]).
    pub fn open(hostname: &str, mut policy: P) -> (ServerSession<P>, Reply) {
        let decision = policy.on_connect();
        let mut session = ServerSession {
            hostname: hostname.to_string(),
            policy,
            state: SessionState::Connected,
            sender: None,
            sender_is_null: false,
            recipients: Vec::new(),
            events: Vec::new(),
        };
        match decision {
            Some(reply) if reply.is_failure() => {
                session.state = SessionState::Closed;
                (session, reply)
            }
            Some(reply) => (session, reply),
            None => {
                let banner = Reply::banner(&session.hostname);
                (session, banner)
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The policy, for post-hoc inspection in tests.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Drain accumulated events.
    pub fn take_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Handle one command, returning the reply.
    pub fn handle(&mut self, command: &Command) -> Reply {
        if self.state == SessionState::Closed {
            return Reply::service_unavailable();
        }
        // Between the 354 and the end-of-data marker the channel carries
        // message content, not commands; a command here is a client bug.
        if self.state == SessionState::ReceivingData {
            return Reply::bad_sequence();
        }
        match command {
            Command::Helo(domain) | Command::Ehlo(domain) => {
                let decision = self.policy.on_hello(domain);
                match decision {
                    Some(reply) if reply.is_failure() => reply,
                    Some(reply) => {
                        self.state = SessionState::Greeted;
                        reply
                    }
                    None => {
                        self.state = SessionState::Greeted;
                        if matches!(command, Command::Ehlo(_)) {
                            Reply::ehlo_ok(&self.hostname)
                        } else {
                            Reply::ok()
                        }
                    }
                }
            }
            Command::MailFrom(sender) => self.do_mail(Some(sender.clone())),
            Command::MailFromNull => self.do_mail(None),
            Command::RcptTo(recipient) => {
                if !matches!(
                    self.state,
                    SessionState::MailAccepted | SessionState::RcptAccepted
                ) {
                    return Reply::bad_sequence();
                }
                match self.policy.on_rcpt_to(recipient) {
                    Some(reply) if reply.is_failure() => reply,
                    other => {
                        self.recipients.push(recipient.clone());
                        self.state = SessionState::RcptAccepted;
                        other.unwrap_or_else(Reply::ok)
                    }
                }
            }
            Command::Data => {
                if self.state != SessionState::RcptAccepted {
                    return Reply::bad_sequence();
                }
                match self.policy.on_data_begin() {
                    Some(reply) if reply.is_failure() => reply,
                    other => {
                        self.state = SessionState::ReceivingData;
                        other.unwrap_or_else(Reply::start_mail_input)
                    }
                }
            }
            Command::Rset => {
                self.reset_envelope();
                if self.state != SessionState::Connected {
                    self.state = SessionState::Greeted;
                }
                Reply::ok()
            }
            Command::Noop => Reply::ok(),
            Command::Quit => {
                self.state = SessionState::Closed;
                Reply::closing()
            }
        }
    }

    fn do_mail(&mut self, sender: Option<EmailAddress>) -> Reply {
        if self.state != SessionState::Greeted {
            return Reply::bad_sequence();
        }
        match self.policy.on_mail_from(sender.as_ref()) {
            Some(reply) if reply.is_failure() => reply,
            other => {
                self.sender_is_null = sender.is_none();
                self.sender = sender;
                self.recipients.clear();
                self.state = SessionState::MailAccepted;
                other.unwrap_or_else(Reply::ok)
            }
        }
    }

    /// Deliver the message body after a 354. Returns the final reply.
    pub fn handle_message(&mut self, body: &str) -> Reply {
        if self.state != SessionState::ReceivingData {
            return Reply::bad_sequence();
        }
        // RFC 1870: we advertised SIZE in the EHLO response; enforce it.
        if body.len() > MAX_MESSAGE_SIZE {
            self.state = SessionState::Greeted;
            self.reset_envelope();
            return Reply::new(552, "Message size exceeds fixed maximum message size");
        }
        match self.policy.on_message(body) {
            Some(reply) if reply.is_failure() => {
                self.state = SessionState::Greeted;
                self.reset_envelope();
                reply
            }
            other => {
                self.events.push(SessionEvent::MessageAccepted {
                    sender: self.sender.clone(),
                    recipients: self.recipients.clone(),
                    body: body.to_string(),
                });
                self.state = SessionState::Greeted;
                self.reset_envelope();
                other.unwrap_or_else(Reply::ok)
            }
        }
    }

    fn reset_envelope(&mut self) {
        self.sender = None;
        self.sender_is_null = false;
        self.recipients.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> EmailAddress {
        EmailAddress::parse(s).unwrap()
    }

    fn greeted() -> ServerSession<AcceptAll> {
        let (mut s, banner) = ServerSession::open("mx.test", AcceptAll);
        assert_eq!(banner.code, 220);
        assert!(s.handle(&Command::Ehlo("probe.test".into())).is_positive());
        s
    }

    #[test]
    fn full_transaction_accepts_message() {
        let mut s = greeted();
        assert!(s
            .handle(&Command::MailFrom(addr("a@b.test")))
            .is_positive());
        assert!(s.handle(&Command::RcptTo(addr("x@mx.test"))).is_positive());
        assert_eq!(s.handle(&Command::Data).code, 354);
        assert_eq!(s.state(), SessionState::ReceivingData);
        assert!(s.handle_message("").is_positive());
        let events = s.take_events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            SessionEvent::MessageAccepted {
                sender, recipients, ..
            } => {
                assert_eq!(sender.as_ref().unwrap(), &addr("a@b.test"));
                assert_eq!(recipients.len(), 1);
            }
        }
        assert_eq!(s.state(), SessionState::Greeted);
    }

    #[test]
    fn sequencing_is_enforced() {
        let (mut s, _) = ServerSession::open("mx.test", AcceptAll);
        assert_eq!(s.handle(&Command::MailFrom(addr("a@b.test"))).code, 503);
        assert_eq!(s.handle(&Command::Data).code, 503);
        assert_eq!(s.handle(&Command::RcptTo(addr("x@y.test"))).code, 503);
        s.handle(&Command::Helo("c.test".into()));
        assert_eq!(s.handle(&Command::Data).code, 503);
        assert_eq!(s.handle_message("body").code, 503);
    }

    #[test]
    fn commands_during_data_are_rejected() {
        let mut s = greeted();
        s.handle(&Command::MailFrom(addr("a@b.test")));
        s.handle(&Command::RcptTo(addr("x@mx.test")));
        assert_eq!(s.handle(&Command::Data).code, 354);
        assert_eq!(s.handle(&Command::Noop).code, 503);
        assert_eq!(s.handle(&Command::Quit).code, 503);
        // The data channel still works afterwards.
        assert!(s.handle_message("body").is_positive());
    }

    #[test]
    fn quit_closes_session() {
        let mut s = greeted();
        assert_eq!(s.handle(&Command::Quit).code, 221);
        assert_eq!(s.state(), SessionState::Closed);
        assert_eq!(s.handle(&Command::Noop).code, 421);
    }

    #[test]
    fn rset_clears_envelope() {
        let mut s = greeted();
        s.handle(&Command::MailFrom(addr("a@b.test")));
        s.handle(&Command::RcptTo(addr("x@mx.test")));
        assert!(s.handle(&Command::Rset).is_positive());
        // After RSET, RCPT is out of sequence again.
        assert_eq!(s.handle(&Command::RcptTo(addr("x@mx.test"))).code, 503);
    }

    struct RejectRcpt {
        allowed: &'static str,
    }

    impl ServerPolicy for RejectRcpt {
        fn on_rcpt_to(&mut self, recipient: &EmailAddress) -> Option<Reply> {
            if recipient.local() == self.allowed {
                None
            } else {
                Some(Reply::mailbox_unavailable())
            }
        }
    }

    #[test]
    fn policy_can_reject_recipients() {
        let (mut s, _) = ServerSession::open("mx.test", RejectRcpt { allowed: "postmaster" });
        s.handle(&Command::Ehlo("p.test".into()));
        s.handle(&Command::MailFrom(addr("a@b.test")));
        assert_eq!(s.handle(&Command::RcptTo(addr("nobody@mx.test"))).code, 550);
        // Rejection does not advance state: DATA still out of sequence.
        assert_eq!(s.handle(&Command::Data).code, 503);
        assert!(s
            .handle(&Command::RcptTo(addr("postmaster@mx.test")))
            .is_positive());
        assert_eq!(s.handle(&Command::Data).code, 354);
    }

    struct RefuseConnections;

    impl ServerPolicy for RefuseConnections {
        fn on_connect(&mut self) -> Option<Reply> {
            Some(Reply::service_unavailable())
        }
    }

    #[test]
    fn connect_hook_can_refuse_service() {
        let (s, reply) = ServerSession::open("mx.test", RefuseConnections);
        assert_eq!(reply.code, 421);
        assert_eq!(s.state(), SessionState::Closed);
    }

    struct RejectAtData;

    impl ServerPolicy for RejectAtData {
        fn on_message(&mut self, _body: &str) -> Option<Reply> {
            Some(Reply::spf_rejected("b.test"))
        }
    }

    #[test]
    fn message_rejection_resets_to_greeted() {
        let (mut s, _) = ServerSession::open("mx.test", RejectAtData);
        s.handle(&Command::Ehlo("p.test".into()));
        s.handle(&Command::MailFrom(addr("a@b.test")));
        s.handle(&Command::RcptTo(addr("x@mx.test")));
        s.handle(&Command::Data);
        let reply = s.handle_message("");
        assert_eq!(reply.code, 550);
        assert!(s.take_events().is_empty());
        assert_eq!(s.state(), SessionState::Greeted);
    }

    #[test]
    fn oversized_messages_get_552() {
        let mut s = greeted();
        s.handle(&Command::MailFrom(addr("a@b.test")));
        s.handle(&Command::RcptTo(addr("x@mx.test")));
        s.handle(&Command::Data);
        let big = "x".repeat(MAX_MESSAGE_SIZE + 1);
        assert_eq!(s.handle_message(&big).code, 552);
        assert!(s.take_events().is_empty());
        assert_eq!(s.state(), SessionState::Greeted);
    }

    #[test]
    fn null_sender_is_accepted() {
        let mut s = greeted();
        assert!(s.handle(&Command::MailFromNull).is_positive());
        assert_eq!(s.state(), SessionState::MailAccepted);
    }
}
