//! Client-side transaction plans — the NoMsg and BlankMsg probes.
//!
//! The paper's §5.1 describes two probe variants:
//!
//! * **NoMsg** — proceed through `EHLO`, `MAIL FROM`, `RCPT TO` and `DATA`,
//!   then *terminate the connection* without sending any message. Nothing
//!   can possibly land in an inbox.
//! * **BlankMsg** — as above, but after the 354 transmit a completely empty
//!   message (no headers, no subject, no body), which real mail systems
//!   overwhelmingly reject or discard.
//!
//! [`ClientRunner`] is the sans-IO mirror of the server session: the caller
//! feeds it replies and it yields the next [`ClientAction`].

use spfail_netsim::ProbeError;

use crate::address::EmailAddress;
use crate::command::Command;
use crate::reply::{Reply, ReplyCategory};

/// Which probe variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransactionStep {
    /// Abort after the server accepts `DATA` (the NoMsg probe).
    AbortBeforeMessage,
    /// Send an empty message after 354 (the BlankMsg probe).
    SendBlankMessage,
}

/// A planned SMTP transaction.
#[derive(Debug, Clone)]
pub struct TransactionPlan {
    /// Domain announced in `EHLO`.
    pub helo_domain: String,
    /// Envelope sender (the unique probe address).
    pub sender: EmailAddress,
    /// Recipient candidates, tried in order while the server rejects them
    /// with permanent failures (the paper's username ladder).
    pub recipients: Vec<EmailAddress>,
    /// Probe variant.
    pub step: TransactionStep,
}

/// How a transaction concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionOutcome {
    /// Rejected by the banner / connect policy.
    RejectedAtConnect(u16),
    /// `EHLO` rejected.
    RejectedAtHello(u16),
    /// `MAIL FROM` rejected with a permanent failure.
    RejectedAtMailFrom(u16),
    /// Every recipient candidate was rejected; code of the last rejection.
    RejectedAtRcpt(u16),
    /// `DATA` rejected.
    RejectedAtData(u16),
    /// A transient failure (4xx) was encountered at the given stage; the
    /// prober may retry later (greylisting).
    Transient {
        /// Stage label: `"connect"`, `"mail"`, `"rcpt"` or `"data"`.
        stage: &'static str,
        /// The reply code.
        code: u16,
    },
    /// The connection was reset mid-session (injected network fault).
    ConnectionReset,
    /// NoMsg probe ran to plan: the server accepted `DATA` and the client
    /// aborted before any message bytes.
    NoMsgCompleted,
    /// BlankMsg probe: the empty message was accepted.
    MessageAccepted(u16),
    /// BlankMsg probe: the empty message was rejected after transmission.
    MessageRejected(u16),
}

impl TransactionOutcome {
    /// Whether the probe progressed far enough that the server had the
    /// envelope sender (and thus could have started SPF validation).
    pub fn reached_mail_from(&self) -> bool {
        !matches!(
            self,
            TransactionOutcome::RejectedAtConnect(_)
                | TransactionOutcome::RejectedAtHello(_)
                | TransactionOutcome::RejectedAtMailFrom(_)
                | TransactionOutcome::Transient { stage: "connect", .. }
                | TransactionOutcome::Transient { stage: "mail", .. }
        )
    }

    /// Whether this is a transient (retryable) conclusion.
    pub fn is_transient(&self) -> bool {
        matches!(self, TransactionOutcome::Transient { .. })
    }

    /// A stable lower-case tag for telemetry (trace span outcomes).
    pub fn label(&self) -> &'static str {
        match self {
            TransactionOutcome::RejectedAtConnect(_) => "rejected_connect",
            TransactionOutcome::RejectedAtHello(_) => "rejected_hello",
            TransactionOutcome::RejectedAtMailFrom(_) => "rejected_mail_from",
            TransactionOutcome::RejectedAtRcpt(_) => "rejected_rcpt",
            TransactionOutcome::RejectedAtData(_) => "rejected_data",
            TransactionOutcome::Transient { .. } => "transient",
            TransactionOutcome::ConnectionReset => "connection_reset",
            TransactionOutcome::NoMsgCompleted => "nomsg_completed",
            TransactionOutcome::MessageAccepted(_) => "message_accepted",
            TransactionOutcome::MessageRejected(_) => "message_rejected",
        }
    }

    /// Map this conclusion into the stack-wide [`ProbeError`] vocabulary,
    /// or `None` when the transaction ran to plan.
    ///
    /// A `Transient` with code 0 is a connect-level timeout (a flaky host
    /// or a closed reachability window), not a server reply.
    pub fn probe_error(&self) -> Option<ProbeError> {
        match self {
            TransactionOutcome::Transient { code: 0, .. } => Some(ProbeError::ConnectTimeout),
            TransactionOutcome::Transient { code, .. } => Some(ProbeError::SmtpTempFail(*code)),
            TransactionOutcome::ConnectionReset => Some(ProbeError::ConnectionReset),
            TransactionOutcome::RejectedAtConnect(code)
            | TransactionOutcome::RejectedAtHello(code)
            | TransactionOutcome::RejectedAtMailFrom(code)
            | TransactionOutcome::RejectedAtRcpt(code)
            | TransactionOutcome::RejectedAtData(code) => Some(ProbeError::SmtpReject(*code)),
            TransactionOutcome::NoMsgCompleted
            | TransactionOutcome::MessageAccepted(_)
            | TransactionOutcome::MessageRejected(_) => None,
        }
    }
}

/// The next thing the driver should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// Send this command and feed the reply back.
    Send(Command),
    /// Transmit the message body (BlankMsg: empty) and feed the reply back.
    SendMessage(String),
    /// Drop the connection without further commands.
    HangUp(TransactionOutcome),
    /// Send `QUIT` (best-effort) and conclude with this outcome.
    Finish(TransactionOutcome),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    WaitBanner,
    WaitHello,
    WaitMail,
    WaitRcpt,
    WaitData,
    WaitMessageAck,
    Done,
}

/// Sans-IO client state machine for one transaction.
pub struct ClientRunner {
    plan: TransactionPlan,
    state: ClientState,
    rcpt_index: usize,
}

impl ClientRunner {
    /// Start a runner; the first reply fed in must be the server banner.
    pub fn new(plan: TransactionPlan) -> ClientRunner {
        assert!(
            !plan.recipients.is_empty(),
            "a transaction plan needs at least one recipient"
        );
        ClientRunner {
            plan,
            state: ClientState::WaitBanner,
            rcpt_index: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &TransactionPlan {
        &self.plan
    }

    /// Index of the recipient that was being tried most recently.
    pub fn recipients_tried(&self) -> usize {
        self.rcpt_index + usize::from(self.state != ClientState::WaitBanner)
    }

    /// Feed the next server reply; returns what to do next.
    pub fn on_reply(&mut self, reply: &Reply) -> ClientAction {
        match self.state {
            ClientState::WaitBanner => match reply.category() {
                ReplyCategory::Success => {
                    self.state = ClientState::WaitHello;
                    ClientAction::Send(Command::Ehlo(self.plan.helo_domain.clone()))
                }
                ReplyCategory::TransientFailure => self.conclude(TransactionOutcome::Transient {
                    stage: "connect",
                    code: reply.code,
                }),
                _ => self.conclude(TransactionOutcome::RejectedAtConnect(reply.code)),
            },
            ClientState::WaitHello => match reply.category() {
                ReplyCategory::Success => {
                    self.state = ClientState::WaitMail;
                    ClientAction::Send(Command::MailFrom(self.plan.sender.clone()))
                }
                _ => self.conclude(TransactionOutcome::RejectedAtHello(reply.code)),
            },
            ClientState::WaitMail => match reply.category() {
                ReplyCategory::Success => {
                    self.state = ClientState::WaitRcpt;
                    ClientAction::Send(Command::RcptTo(
                        self.plan.recipients[self.rcpt_index].clone(),
                    ))
                }
                ReplyCategory::TransientFailure => self.conclude(TransactionOutcome::Transient {
                    stage: "mail",
                    code: reply.code,
                }),
                _ => self.conclude(TransactionOutcome::RejectedAtMailFrom(reply.code)),
            },
            ClientState::WaitRcpt => match reply.category() {
                ReplyCategory::Success => {
                    self.state = ClientState::WaitData;
                    ClientAction::Send(Command::Data)
                }
                ReplyCategory::TransientFailure => self.conclude(TransactionOutcome::Transient {
                    stage: "rcpt",
                    code: reply.code,
                }),
                _ => {
                    // Try the next username on the ladder within the same
                    // session; give up when the ladder is exhausted.
                    self.rcpt_index += 1;
                    if self.rcpt_index < self.plan.recipients.len() {
                        ClientAction::Send(Command::RcptTo(
                            self.plan.recipients[self.rcpt_index].clone(),
                        ))
                    } else {
                        self.conclude(TransactionOutcome::RejectedAtRcpt(reply.code))
                    }
                }
            },
            ClientState::WaitData => match reply.category() {
                ReplyCategory::Intermediate => match self.plan.step {
                    TransactionStep::AbortBeforeMessage => {
                        self.state = ClientState::Done;
                        ClientAction::HangUp(TransactionOutcome::NoMsgCompleted)
                    }
                    TransactionStep::SendBlankMessage => {
                        self.state = ClientState::WaitMessageAck;
                        // Entirely blank: no headers, no subject, no body.
                        ClientAction::SendMessage(String::new())
                    }
                },
                ReplyCategory::TransientFailure => self.conclude(TransactionOutcome::Transient {
                    stage: "data",
                    code: reply.code,
                }),
                _ => self.conclude(TransactionOutcome::RejectedAtData(reply.code)),
            },
            ClientState::WaitMessageAck => {
                let outcome = if reply.is_positive() {
                    TransactionOutcome::MessageAccepted(reply.code)
                } else {
                    TransactionOutcome::MessageRejected(reply.code)
                };
                self.conclude(outcome)
            }
            ClientState::Done => ClientAction::HangUp(TransactionOutcome::RejectedAtConnect(0)),
        }
    }

    fn conclude(&mut self, outcome: TransactionOutcome) -> ClientAction {
        self.state = ClientState::Done;
        ClientAction::Finish(outcome)
    }
}

/// The paper's curated recipient username ladder (§6.3), in trial order.
pub const USERNAME_LADDER: [&str; 14] = [
    "mmj7yzdm0tbk",
    "noreply",
    "donotreply",
    "no-reply",
    "postmaster",
    "abuse",
    "admin",
    "administrator",
    "newsletters",
    "alerts",
    "info",
    "auto-confirm",
    "appointments",
    "service",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> EmailAddress {
        EmailAddress::parse(s).unwrap()
    }

    fn plan(step: TransactionStep, rcpts: &[&str]) -> TransactionPlan {
        TransactionPlan {
            helo_domain: "probe.dns-lab.org".into(),
            sender: addr("mmj7yzdm0tbk@ab1c.s1.spf-test.dns-lab.org"),
            recipients: rcpts.iter().map(|r| addr(r)).collect(),
            step,
        }
    }

    #[test]
    fn nomsg_happy_path_aborts_after_354() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::AbortBeforeMessage,
            &["postmaster@mx.test"],
        ));
        assert_eq!(
            c.on_reply(&Reply::banner("mx.test")),
            ClientAction::Send(Command::Ehlo("probe.dns-lab.org".into()))
        );
        assert!(matches!(
            c.on_reply(&Reply::ehlo_ok("mx.test")),
            ClientAction::Send(Command::MailFrom(_))
        ));
        assert!(matches!(
            c.on_reply(&Reply::ok()),
            ClientAction::Send(Command::RcptTo(_))
        ));
        assert_eq!(c.on_reply(&Reply::ok()), ClientAction::Send(Command::Data));
        assert_eq!(
            c.on_reply(&Reply::start_mail_input()),
            ClientAction::HangUp(TransactionOutcome::NoMsgCompleted)
        );
    }

    #[test]
    fn blankmsg_sends_empty_body() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::SendBlankMessage,
            &["postmaster@mx.test"],
        ));
        c.on_reply(&Reply::banner("mx.test"));
        c.on_reply(&Reply::ehlo_ok("mx.test"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::ok());
        assert_eq!(
            c.on_reply(&Reply::start_mail_input()),
            ClientAction::SendMessage(String::new())
        );
        assert_eq!(
            c.on_reply(&Reply::ok()),
            ClientAction::Finish(TransactionOutcome::MessageAccepted(250))
        );
    }

    #[test]
    fn blankmsg_rejection_is_reported() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::SendBlankMessage,
            &["postmaster@mx.test"],
        ));
        c.on_reply(&Reply::banner("mx.test"));
        c.on_reply(&Reply::ehlo_ok("mx.test"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::start_mail_input());
        assert_eq!(
            c.on_reply(&Reply::spf_rejected("b.test")),
            ClientAction::Finish(TransactionOutcome::MessageRejected(550))
        );
    }

    #[test]
    fn username_ladder_is_walked_on_550() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::AbortBeforeMessage,
            &["a@mx.test", "b@mx.test", "c@mx.test"],
        ));
        c.on_reply(&Reply::banner("mx.test"));
        c.on_reply(&Reply::ehlo_ok("mx.test"));
        c.on_reply(&Reply::ok()); // MAIL accepted
        let next = c.on_reply(&Reply::mailbox_unavailable());
        assert_eq!(
            next,
            ClientAction::Send(Command::RcptTo(addr("b@mx.test")))
        );
        let next = c.on_reply(&Reply::mailbox_unavailable());
        assert_eq!(
            next,
            ClientAction::Send(Command::RcptTo(addr("c@mx.test")))
        );
        assert_eq!(
            c.on_reply(&Reply::mailbox_unavailable()),
            ClientAction::Finish(TransactionOutcome::RejectedAtRcpt(550))
        );
    }

    #[test]
    fn greylisting_is_transient() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::AbortBeforeMessage,
            &["a@mx.test"],
        ));
        c.on_reply(&Reply::banner("mx.test"));
        c.on_reply(&Reply::ehlo_ok("mx.test"));
        c.on_reply(&Reply::ok());
        let action = c.on_reply(&Reply::greylisted());
        assert_eq!(
            action,
            ClientAction::Finish(TransactionOutcome::Transient {
                stage: "rcpt",
                code: 450
            })
        );
        match action {
            ClientAction::Finish(outcome) => {
                assert!(outcome.is_transient());
                assert!(outcome.reached_mail_from());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn banner_rejection() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::AbortBeforeMessage,
            &["a@mx.test"],
        ));
        let action = c.on_reply(&Reply::service_unavailable());
        assert_eq!(
            action,
            ClientAction::Finish(TransactionOutcome::Transient {
                stage: "connect",
                code: 421
            })
        );
    }

    #[test]
    fn mail_from_rejection_means_no_spf_possible() {
        let mut c = ClientRunner::new(plan(
            TransactionStep::AbortBeforeMessage,
            &["a@mx.test"],
        ));
        c.on_reply(&Reply::banner("mx.test"));
        c.on_reply(&Reply::ehlo_ok("mx.test"));
        let action = c.on_reply(&Reply::new(553, "sender rejected"));
        let ClientAction::Finish(outcome) = action else {
            panic!("expected finish");
        };
        assert_eq!(outcome, TransactionOutcome::RejectedAtMailFrom(553));
        assert!(!outcome.reached_mail_from());
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn empty_recipient_list_panics() {
        let _ = ClientRunner::new(plan(TransactionStep::AbortBeforeMessage, &[]));
    }
}
