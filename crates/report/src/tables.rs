//! Tables 1–7.
//!
//! Every builder is written against [`Source`], so the eager and
//! streaming pipelines produce each table through the same code path:
//! the world-wide counts come from the pre-folded
//! [`crate::aggregates::WorldAggregates`], and the longitudinal Table 5
//! reads only retained domains.

use std::collections::BTreeMap;

use serde_json::{json, Value};
use spfail_prober::{SnapshotStatus, BEHAVIOR_BITS};
use spfail_world::{tld as tldmod, PACKAGE_TIMELINE};

use crate::aggregates::{Outcomes, TABLE1_SETS};
use crate::pipeline::{Context, SetFilter, Source, StreamContext};
use crate::table::{count_pct, pct, Table};
use crate::Exhibit;

/// Table 1: overlap between the domain measurement sets.
pub fn table1(ctx: &Context) -> Exhibit {
    table1_impl(&Source::Eager(ctx))
}

/// Table 1 from a streaming run.
pub fn table1_streaming(sc: &StreamContext) -> Exhibit {
    table1_impl(&Source::Streaming(sc))
}

fn table1_impl(src: &Source) -> Exhibit {
    let agg = src.aggregates();
    let mut table = Table::new(["Domain Set", "∩ 2-Week MX", "∩ Alexa 1000", "∩ Alexa Top List"]);
    let mut cells = serde_json::Map::new();
    for (r, row_set) in TABLE1_SETS.iter().enumerate() {
        let row_total = agg.set_counts[row_set.index()];
        let mut row = vec![row_set.label().to_string()];
        for (c, col_set) in TABLE1_SETS.iter().enumerate() {
            let overlap = agg.overlaps[r][c];
            row.push(count_pct(overlap, row_total));
            cells.insert(
                format!("{}|{}", row_set.label(), col_set.label()),
                json!(overlap),
            );
        }
        table.row(row);
    }
    Exhibit {
        id: "table1",
        title: "Table 1: Overlap in domain measurement sets",
        paper_claim: "2-Week MX: 22,911 domains, 135 (0.5%) also in Alexa 1000, \
                      2,922 (12.7%) also in the Alexa Top List",
        rendered: table.render(),
        json: Value::Object(cells),
    }
}

/// Table 2: most common TLDs per domain set.
pub fn table2(ctx: &Context) -> Exhibit {
    table2_impl(&Source::Eager(ctx))
}

/// Table 2 from a streaming run.
pub fn table2_streaming(sc: &StreamContext) -> Exhibit {
    table2_impl(&Source::Streaming(sc))
}

fn table2_impl(src: &Source) -> Exhibit {
    let agg = src.aggregates();
    let mut table = Table::new(["#", "Alexa TLD", "Count", "2-Week TLD", "Count"]);
    let top15 = |counts: &BTreeMap<String, usize>| -> Vec<(String, usize)> {
        let mut sorted: Vec<(String, usize)> =
            counts.iter().map(|(t, c)| (t.clone(), *c)).collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        sorted.truncate(15);
        sorted
    };
    let alexa = top15(&agg.tld_alexa);
    let two_week = top15(&agg.tld_two_week);
    for i in 0..15 {
        let (at, ac) = alexa
            .get(i)
            .map(|(t, c)| (t.clone(), c.to_string()))
            .unwrap_or_default();
        let (wt, wc) = two_week
            .get(i)
            .map(|(t, c)| (t.clone(), c.to_string()))
            .unwrap_or_default();
        table.row([format!("{}", i + 1), at, ac, wt, wc]);
    }
    Exhibit {
        id: "table2",
        title: "Table 2: Most common TLDs per domain set",
        paper_claim: "com dominates both sets (55% of Alexa, 49% of 2-Week MX); \
                      Alexa tail is ccTLD-heavy (ru, ir, ...), 2-Week tail is \
                      institutional (org, edu, net, us, gov)",
        rendered: table.render(),
        json: json!({
            "alexa": alexa,
            "two_week": two_week,
        }),
    }
}

/// Table 3: NoMsg/BlankMsg test outcomes by domain set.
pub fn table3(ctx: &Context) -> Exhibit {
    table3_impl(&Source::Eager(ctx))
}

/// Table 3 from a streaming run.
pub fn table3_streaming(sc: &StreamContext) -> Exhibit {
    table3_impl(&Source::Streaming(sc))
}

fn table3_impl(src: &Source) -> Exhibit {
    let agg = src.aggregates();
    let columns = [
        ("Alexa domains", agg.domains[SetFilter::AlexaTopList.index()]),
        ("Alexa addrs", agg.addresses[SetFilter::AlexaTopList.index()]),
        ("2-Week domains", agg.domains[SetFilter::TwoWeek.index()]),
        ("2-Week addrs", agg.addresses[SetFilter::TwoWeek.index()]),
        ("Providers", agg.domains[SetFilter::TopProviders.index()]),
    ];
    let mut table = Table::new(
        std::iter::once("Outcome".to_string())
            .chain(columns.iter().map(|(l, _)| l.to_string())),
    );
    type RowGetter = fn(&Outcomes) -> (usize, usize);
    let rows: [(&str, RowGetter); 11] = [
        ("Total Tested", |o| (o.total, o.total)),
        ("Connection Refused", |o| (o.refused, o.total)),
        ("NoMsg Test", |o| (o.nomsg_total, o.total)),
        ("  SMTP Failure", |o| (o.nomsg_failure, o.nomsg_total)),
        ("  SPF Measured", |o| (o.nomsg_measured, o.nomsg_total)),
        ("  SPF Not Measured", |o| (o.nomsg_not_measured, o.nomsg_total)),
        ("BlankMsg Test", |o| (o.blank_total, o.total)),
        ("  SMTP Failure", |o| (o.blank_failure, o.blank_total)),
        ("  SPF Measured", |o| (o.blank_measured, o.blank_total)),
        ("  SPF Not Measured", |o| (o.blank_not_measured, o.blank_total)),
        ("Total SPF Measured", |o| (o.total_measured, o.total)),
    ];
    for (label, get) in rows {
        let mut row = vec![label.to_string()];
        for (_, outcomes) in &columns {
            let (count, total) = get(outcomes);
            row.push(count_pct(count, total));
        }
        table.row(row);
    }
    Exhibit {
        id: "table3",
        title: "Table 3: NoMsg/BlankMsg test outcomes by domain set",
        paper_claim: "Alexa: 418,840 domains (26% refused, 48% SPF measured) on \
                      174,679 addresses (47% refused, 23% measured); 2-Week: 22,911 \
                      domains (10% refused, 73% measured) on 11,203 addresses; \
                      BlankMsg recovers most hosts NoMsg misses",
        rendered: table.render(),
        json: json!(columns
            .iter()
            .map(|(label, o)| (label.to_string(), o.to_json()))
            .collect::<BTreeMap<String, Value>>()),
    }
}

/// Table 4: initial SPF results breakdown.
pub fn table4(ctx: &Context) -> Exhibit {
    table4_impl(&Source::Eager(ctx))
}

/// Table 4 from a streaming run.
pub fn table4_streaming(sc: &StreamContext) -> Exhibit {
    table4_impl(&Source::Streaming(sc))
}

fn table4_impl(src: &Source) -> Exhibit {
    let agg = src.aggregates();
    let mut table = Table::new([
        "Set",
        "SPF Measured",
        "Vulnerable",
        "Other non-compliant",
        "RFC-compliant",
    ]);
    let mut data = serde_json::Map::new();
    for set in [SetFilter::AlexaTopList, SetFilter::TwoWeek, SetFilter::All] {
        // Address-level breakdown.
        let a = agg.table4_addresses[set.index()];
        let compliant = a.measured - a.vulnerable - a.erroneous;
        table.row([
            format!("{} (addresses)", set.label()),
            a.measured.to_string(),
            count_pct(a.vulnerable, a.measured),
            count_pct(a.erroneous, a.measured),
            count_pct(compliant, a.measured),
        ]);

        // Domain-level breakdown: a domain inherits the worst behaviour
        // among its measured hosts (vulnerable > erroneous > compliant).
        let d = agg.table4_domains[set.index()];
        let d_compliant = d.measured - d.vulnerable - d.erroneous;
        table.row([
            format!("{} (domains)", set.label()),
            d.measured.to_string(),
            count_pct(d.vulnerable, d.measured),
            count_pct(d.erroneous, d.measured),
            count_pct(d_compliant, d.measured),
        ]);

        data.insert(
            set.label().to_string(),
            json!({
                "measured": a.measured,
                "vulnerable": a.vulnerable,
                "erroneous": a.erroneous,
                "compliant": compliant,
                "vulnerable_ci95": crate::stats::proportion_json(a.vulnerable, a.measured),
                "erroneous_ci95": crate::stats::proportion_json(a.erroneous, a.measured),
                "domains": {
                    "measured": d.measured,
                    "vulnerable": d.vulnerable,
                    "erroneous": d.erroneous,
                    "compliant": d_compliant,
                },
            }),
        );
    }
    Exhibit {
        id: "table4",
        title: "Table 4: SPF initial results breakdown (addresses)",
        paper_claim: "~1 in 6 SPF-validating Alexa addresses vulnerable, ~1 in 10 \
                      for 2-Week MX; ~6% more expand macros erroneously without \
                      being vulnerable; 7,212 vulnerable addresses in total (17% \
                      of tested servers)",
        rendered: table.render(),
        json: Value::Object(data),
    }
}

/// Table 5: best/worst patch rates by TLD.
pub fn table5(ctx: &Context) -> Exhibit {
    table5_impl(&Source::Eager(ctx))
}

/// Table 5 from a streaming run.
pub fn table5_streaming(sc: &StreamContext) -> Exhibit {
    table5_impl(&Source::Streaming(sc))
}

fn table5_impl(src: &Source) -> Exhibit {
    let campaign = src.campaign();
    let min_group = ((50.0 * src.config().scale).round() as usize).max(3);
    let mut per_tld: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for &domain in &campaign.vulnerable_domains {
        let tld = src.domain(domain).tld.clone();
        let entry = per_tld.entry(tld).or_default();
        entry.1 += 1;
        if campaign.snapshot.get(&domain) == Some(&SnapshotStatus::Patched) {
            entry.0 += 1;
        }
    }
    let mut rows: Vec<(String, usize, usize, f64)> = per_tld
        .iter()
        .filter(|(_, (_, total))| *total >= min_group)
        .map(|(tld, (patched, total))| {
            (tld.clone(), *patched, *total, *patched as f64 / *total as f64)
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("rates are finite"));

    let mut table = Table::new(["TLD", "# Patched", "# Initially Vulnerable", "% Patched", "Paper"]);
    let paper = |tld: &str| -> String {
        tldmod::TLD_PATCH_RATES
            .iter()
            .find(|(t, _)| *t == tld)
            .map(|(_, r)| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "-".to_string())
    };
    let shown: Vec<&(String, usize, usize, f64)> = if rows.len() <= 10 {
        rows.iter().collect()
    } else {
        rows.iter().take(5).chain(rows.iter().rev().take(5).rev()).collect()
    };
    for (tld, patched, total, rate) in shown {
        table.row([
            format!(".{tld}"),
            patched.to_string(),
            total.to_string(),
            format!("{:.0}%", rate * 100.0),
            paper(tld),
        ]);
    }
    Exhibit {
        id: "table5",
        title: "Table 5: Best/worst patch rates for TLDs with enough vulnerable domains",
        paper_claim: "za 79%, gr 75%, de 46%, eu 29%, tr 28% at the top; \
                      ir/il 3%, by/ru 2%, tw 0% at the bottom; com benchmark 15%",
        rendered: table.render(),
        json: json!(rows
            .iter()
            .map(|(tld, p, t, r)| json!({"tld": tld, "patched": p, "vulnerable": t, "rate": r}))
            .collect::<Vec<_>>()),
    }
}

/// Table 6: package-manager patch timeline (input data, rendered as the
/// paper prints it).
pub fn table6() -> Exhibit {
    let mut table = Table::new([
        "Package Manager",
        "CVE-2021-20314",
        "CVE-2021-33912/13",
    ]);
    for row in PACKAGE_TIMELINE {
        let fmt = |days: Option<u16>, date: Option<&str>, bundled: bool| match (days, date) {
            (Some(d), Some(date)) => {
                let star = if bundled { "*" } else { "" };
                format!("{d}{star} ({date})")
            }
            _ => "Unpatched".to_string(),
        };
        table.row([
            row.name.to_string(),
            fmt(row.days_20314, row.date_20314, false),
            fmt(row.days_33912, row.date_33912, row.bundled),
        ]);
    }
    Exhibit {
        id: "table6",
        title: "Table 6: Patch timeline for package managers (days from disclosure)",
        paper_claim: "Debian patched the day after disclosure; RedHat/Gentoo/Arch \
                      bundled the fix with CVE-2021-20314 before disclosure; \
                      Ubuntu, FreeBSD, NetBSD and SUSE remained unpatched",
        rendered: format!("{}(* fix bundled with the CVE-2021-20314 update)\n", table.render()),
        json: json!(PACKAGE_TIMELINE
            .iter()
            .map(|r| json!({
                "manager": r.name,
                "days_20314": r.days_20314,
                "date_20314": r.date_20314,
                "days_33912": r.days_33912,
                "date_33912": r.date_33912,
                "bundled": r.bundled,
            }))
            .collect::<Vec<_>>()),
    }
}

/// Table 7: macro-expansion behaviours by IP address.
pub fn table7(ctx: &Context) -> Exhibit {
    table7_impl(&Source::Eager(ctx))
}

/// Table 7 from a streaming run.
pub fn table7_streaming(sc: &StreamContext) -> Exhibit {
    table7_impl(&Source::Streaming(sc))
}

fn table7_impl(src: &Source) -> Exhibit {
    let agg = src.aggregates();
    // BEHAVIOR_BITS is in MacroBehavior's Ord order, so walking the
    // count array in index order and skipping zeros reproduces the
    // observed-behaviour map.
    let counts: Vec<(&'static str, usize)> = BEHAVIOR_BITS
        .iter()
        .zip(agg.behavior_counts.iter())
        .filter(|(_, &count)| count > 0)
        .map(|(behavior, &count)| (behavior.label(), count))
        .collect();
    let measured = agg.measured_hosts;
    let unknown = agg.unknown_pattern_hosts;
    let multi = agg.multi_pattern_hosts;
    let mut table = Table::new(["Behaviour", "Addresses", "% of measured"]);
    for (label, count) in &counts {
        table.row([label.to_string(), count.to_string(), pct(*count, measured)]);
    }
    if unknown > 0 {
        table.row(["other/unknown".to_string(), unknown.to_string(), pct(unknown, measured)]);
    }
    table.row([
        "≥2 distinct patterns".to_string(),
        multi.to_string(),
        pct(multi, measured),
    ]);
    Exhibit {
        id: "table7",
        title: "Table 7: Behaviours in SPF macro expansion by IP address",
        paper_claim: "~1/6 of measured IPs show the vulnerable pattern; ~6% expand \
                      erroneously in other ways (no expansion, missing truncation, \
                      missing reversal, ...); 2,615 IPs (6%) sent ≥2 distinct \
                      expansion patterns",
        rendered: table.render(),
        json: json!({
            "measured": measured,
            "behaviors": counts.iter().map(|(b, c)| (b.to_string(), *c))
                .collect::<BTreeMap<String, usize>>(),
            "unknown_pattern_hosts": unknown,
            "multi_pattern": multi,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> &'static Context {
        crate::testctx::shared()
    }

    #[test]
    fn table1_diagonal_is_total() {
        let ctx = ctx();
        let e = table1(ctx);
        let two_week_total = ctx.set_domains(SetFilter::TwoWeek).len();
        assert_eq!(
            e.json["2-Week MX|2-Week MX"].as_u64().expect("present") as usize,
            two_week_total
        );
        // Scaled Table 1: the 2-week ∩ toplist overlap is ~12.7%.
        let overlap = e.json["2-Week MX|Alexa Top List"].as_u64().expect("present") as f64;
        let share = overlap / two_week_total as f64;
        assert!((0.08..0.18).contains(&share), "overlap share {share}");
    }

    #[test]
    fn table2_has_com_on_top_for_both_sets() {
        let e = table2(ctx());
        assert_eq!(e.json["alexa"][0][0], "com");
        assert_eq!(e.json["two_week"][0][0], "com");
    }

    #[test]
    fn table3_totals_are_consistent() {
        let ctx = ctx();
        let o = ctx.aggregates.addresses[SetFilter::AlexaTopList.index()];
        assert_eq!(o.total, o.refused + o.nomsg_total);
        assert_eq!(
            o.nomsg_total,
            o.nomsg_failure + o.nomsg_measured + o.nomsg_not_measured
        );
        assert_eq!(o.blank_total, o.nomsg_not_measured, "BlankMsg follows NoMsg misses");
        assert_eq!(
            o.blank_total,
            o.blank_failure + o.blank_measured + o.blank_not_measured
        );
        assert_eq!(o.total_measured, o.nomsg_measured + o.blank_measured);
        // Shape: refusal rate near the calibrated 47%.
        let refuse_rate = o.refused as f64 / o.total as f64;
        assert!((0.35..0.60).contains(&refuse_rate), "refuse rate {refuse_rate}");
    }

    #[test]
    fn table4_vulnerability_rates_have_the_paper_shape() {
        let ctx = ctx();
        let e = table4(ctx);
        let alexa = &e.json["Alexa Top List"];
        let two_week = &e.json["2-Week MX"];
        let rate = |v: &Value| {
            v["vulnerable"].as_f64().expect("number") / v["measured"].as_f64().expect("number")
        };
        let alexa_rate = rate(alexa);
        let two_week_rate = rate(two_week);
        assert!((0.10..0.28).contains(&alexa_rate), "alexa {alexa_rate}");
        // The two-set ordering (Alexa ~1/6 vs 2-Week ~1/10) is only
        // statistically meaningful with enough measured 2-Week hosts.
        if two_week["measured"].as_u64().expect("n") >= 100 {
            assert!(
                alexa_rate > two_week_rate,
                "Alexa addresses are more vulnerable than 2-Week MX \
                 ({alexa_rate} vs {two_week_rate})"
            );
        }
    }

    #[test]
    fn table5_orders_by_rate_and_tw_is_zero_when_present() {
        let ctx = ctx();
        let e = table5(ctx);
        let rows = e.json.as_array().expect("array");
        let rates: Vec<f64> = rows.iter().map(|r| r["rate"].as_f64().expect("rate")).collect();
        for pair in rates.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "sorted descending");
        }
        for row in rows {
            if row["tld"] == "tw" {
                assert_eq!(row["patched"], 0, "tw never patches (Table 5)");
            }
        }
    }

    #[test]
    fn table6_matches_static_data() {
        let e = table6();
        assert!(e.rendered.contains("Debian"));
        assert!(e.rendered.contains("Unpatched"));
        assert!(e.rendered.contains("2022-01-20"));
        assert_eq!(e.json.as_array().expect("array").len(), 9);
    }

    #[test]
    fn table7_multi_pattern_share_is_small() {
        let ctx = ctx();
        let e = table7(ctx);
        let measured = e.json["measured"].as_u64().expect("n") as f64;
        let multi = e.json["multi_pattern"].as_u64().expect("n") as f64;
        assert!(measured > 0.0);
        let share = multi / measured;
        assert!((0.0..0.15).contains(&share), "multi share {share}");
    }
}
