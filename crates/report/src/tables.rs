//! Tables 1–7.

use std::collections::BTreeMap;

use serde_json::{json, Value};
use spfail_libspf2::MacroBehavior;
use spfail_prober::{HostClass, SnapshotStatus};
use spfail_world::{tld as tldmod, PACKAGE_TIMELINE};

use crate::pipeline::{Context, SetFilter};
use crate::table::{count_pct, pct, Table};
use crate::Exhibit;

/// Table 1: overlap between the domain measurement sets.
pub fn table1(ctx: &Context) -> Exhibit {
    let sets = [
        SetFilter::TwoWeek,
        SetFilter::Alexa1000,
        SetFilter::AlexaTopList,
    ];
    let mut table = Table::new(["Domain Set", "∩ 2-Week MX", "∩ Alexa 1000", "∩ Alexa Top List"]);
    let mut cells = serde_json::Map::new();
    for row_set in sets {
        let row_domains = ctx.set_domains(row_set);
        let mut row = vec![row_set.label().to_string()];
        for col_set in sets {
            let overlap = row_domains
                .iter()
                .filter(|&&d| ctx.in_set(d, col_set))
                .count();
            row.push(count_pct(overlap, row_domains.len()));
            cells.insert(
                format!("{}|{}", row_set.label(), col_set.label()),
                json!(overlap),
            );
        }
        table.row(row);
    }
    Exhibit {
        id: "table1",
        title: "Table 1: Overlap in domain measurement sets",
        paper_claim: "2-Week MX: 22,911 domains, 135 (0.5%) also in Alexa 1000, \
                      2,922 (12.7%) also in the Alexa Top List",
        rendered: table.render(),
        json: Value::Object(cells),
    }
}

/// Table 2: most common TLDs per domain set.
pub fn table2(ctx: &Context) -> Exhibit {
    let mut table = Table::new(["#", "Alexa TLD", "Count", "2-Week TLD", "Count"]);
    let count_tlds = |set: SetFilter| -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for d in ctx.set_domains(set) {
            *counts.entry(ctx.world.domain(d).tld.clone()).or_default() += 1;
        }
        let mut sorted: Vec<(String, usize)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        sorted.truncate(15);
        sorted
    };
    let alexa = count_tlds(SetFilter::AlexaTopList);
    let two_week = count_tlds(SetFilter::TwoWeek);
    for i in 0..15 {
        let (at, ac) = alexa
            .get(i)
            .map(|(t, c)| (t.clone(), c.to_string()))
            .unwrap_or_default();
        let (wt, wc) = two_week
            .get(i)
            .map(|(t, c)| (t.clone(), c.to_string()))
            .unwrap_or_default();
        table.row([format!("{}", i + 1), at, ac, wt, wc]);
    }
    Exhibit {
        id: "table2",
        title: "Table 2: Most common TLDs per domain set",
        paper_claim: "com dominates both sets (55% of Alexa, 49% of 2-Week MX); \
                      Alexa tail is ccTLD-heavy (ru, ir, ...), 2-Week tail is \
                      institutional (org, edu, net, us, gov)",
        rendered: table.render(),
        json: json!({
            "alexa": alexa,
            "two_week": two_week,
        }),
    }
}

/// Per-set NoMsg/BlankMsg outcome counts (one Table 3 column pair).
#[derive(Debug, Default, Clone)]
struct Outcomes {
    total: usize,
    refused: usize,
    nomsg_total: usize,
    nomsg_failure: usize,
    nomsg_measured: usize,
    nomsg_not_measured: usize,
    blank_total: usize,
    blank_failure: usize,
    blank_measured: usize,
    blank_not_measured: usize,
    total_measured: usize,
}

impl Outcomes {
    fn to_json(&self) -> Value {
        json!({
            "total": self.total,
            "refused": self.refused,
            "nomsg_total": self.nomsg_total,
            "nomsg_failure": self.nomsg_failure,
            "nomsg_measured": self.nomsg_measured,
            "nomsg_not_measured": self.nomsg_not_measured,
            "blank_total": self.blank_total,
            "blank_failure": self.blank_failure,
            "blank_measured": self.blank_measured,
            "blank_not_measured": self.blank_not_measured,
            "total_measured": self.total_measured,
        })
    }
}

fn address_outcomes(ctx: &Context, set: SetFilter) -> Outcomes {
    let mut o = Outcomes::default();
    for host in ctx.set_hosts(set) {
        o.total += 1;
        let initial = ctx.initial(host);
        if initial.nomsg.refused() {
            o.refused += 1;
            continue;
        }
        o.nomsg_total += 1;
        if initial.nomsg.spf_measured() {
            o.nomsg_measured += 1;
        } else if initial.nomsg.smtp_failure() {
            o.nomsg_failure += 1;
        } else {
            o.nomsg_not_measured += 1;
        }
        if let Some(blank) = &initial.blankmsg {
            o.blank_total += 1;
            if blank.spf_measured() {
                o.blank_measured += 1;
            } else if blank.smtp_failure() {
                o.blank_failure += 1;
            } else {
                o.blank_not_measured += 1;
            }
        }
        if ctx.host_class(host) == HostClass::SpfMeasured {
            o.total_measured += 1;
        }
    }
    o
}

fn domain_outcomes(ctx: &Context, set: SetFilter) -> Outcomes {
    let mut o = Outcomes::default();
    for domain in ctx.set_domains(set) {
        o.total += 1;
        let hosts = &ctx.world.domain(domain).hosts;
        let initials: Vec<_> = hosts.iter().map(|&h| ctx.initial(h)).collect();
        if initials.iter().all(|i| i.nomsg.refused()) {
            o.refused += 1;
            continue;
        }
        o.nomsg_total += 1;
        let any_nomsg_measured = initials.iter().any(|i| i.nomsg.spf_measured());
        let all_nomsg_failed = initials
            .iter()
            .filter(|i| !i.nomsg.refused())
            .all(|i| i.nomsg.smtp_failure());
        if any_nomsg_measured {
            o.nomsg_measured += 1;
        } else if all_nomsg_failed {
            o.nomsg_failure += 1;
        } else {
            o.nomsg_not_measured += 1;
        }
        let blanks: Vec<_> = initials.iter().filter_map(|i| i.blankmsg.as_ref()).collect();
        if !blanks.is_empty() {
            o.blank_total += 1;
            if blanks.iter().any(|b| b.spf_measured()) {
                o.blank_measured += 1;
            } else if blanks.iter().all(|b| b.smtp_failure()) {
                o.blank_failure += 1;
            } else {
                o.blank_not_measured += 1;
            }
        }
        if initials.iter().any(|i| i.classification().is_some()) {
            o.total_measured += 1;
        }
    }
    o
}

/// Table 3: NoMsg/BlankMsg test outcomes by domain set.
pub fn table3(ctx: &Context) -> Exhibit {
    let columns = [
        ("Alexa domains", domain_outcomes(ctx, SetFilter::AlexaTopList)),
        ("Alexa addrs", address_outcomes(ctx, SetFilter::AlexaTopList)),
        ("2-Week domains", domain_outcomes(ctx, SetFilter::TwoWeek)),
        ("2-Week addrs", address_outcomes(ctx, SetFilter::TwoWeek)),
        ("Providers", domain_outcomes(ctx, SetFilter::TopProviders)),
    ];
    let mut table = Table::new(
        std::iter::once("Outcome".to_string())
            .chain(columns.iter().map(|(l, _)| l.to_string())),
    );
    type RowGetter = fn(&Outcomes) -> (usize, usize);
    let rows: [(&str, RowGetter); 11] = [
        ("Total Tested", |o| (o.total, o.total)),
        ("Connection Refused", |o| (o.refused, o.total)),
        ("NoMsg Test", |o| (o.nomsg_total, o.total)),
        ("  SMTP Failure", |o| (o.nomsg_failure, o.nomsg_total)),
        ("  SPF Measured", |o| (o.nomsg_measured, o.nomsg_total)),
        ("  SPF Not Measured", |o| (o.nomsg_not_measured, o.nomsg_total)),
        ("BlankMsg Test", |o| (o.blank_total, o.total)),
        ("  SMTP Failure", |o| (o.blank_failure, o.blank_total)),
        ("  SPF Measured", |o| (o.blank_measured, o.blank_total)),
        ("  SPF Not Measured", |o| (o.blank_not_measured, o.blank_total)),
        ("Total SPF Measured", |o| (o.total_measured, o.total)),
    ];
    for (label, get) in rows {
        let mut row = vec![label.to_string()];
        for (_, outcomes) in &columns {
            let (count, total) = get(outcomes);
            row.push(count_pct(count, total));
        }
        table.row(row);
    }
    Exhibit {
        id: "table3",
        title: "Table 3: NoMsg/BlankMsg test outcomes by domain set",
        paper_claim: "Alexa: 418,840 domains (26% refused, 48% SPF measured) on \
                      174,679 addresses (47% refused, 23% measured); 2-Week: 22,911 \
                      domains (10% refused, 73% measured) on 11,203 addresses; \
                      BlankMsg recovers most hosts NoMsg misses",
        rendered: table.render(),
        json: json!(columns
            .iter()
            .map(|(label, o)| (label.to_string(), o.to_json()))
            .collect::<BTreeMap<String, Value>>()),
    }
}

/// Table 4: initial SPF results breakdown.
pub fn table4(ctx: &Context) -> Exhibit {
    let mut table = Table::new([
        "Set",
        "SPF Measured",
        "Vulnerable",
        "Other non-compliant",
        "RFC-compliant",
    ]);
    let mut data = serde_json::Map::new();
    for set in [SetFilter::AlexaTopList, SetFilter::TwoWeek, SetFilter::All] {
        // Address-level breakdown.
        let mut measured = 0usize;
        let mut vulnerable = 0usize;
        let mut erroneous = 0usize;
        for host in ctx.set_hosts(set) {
            let Some(classification) = ctx.initial(host).classification() else {
                continue;
            };
            measured += 1;
            if classification.vulnerable() {
                vulnerable += 1;
            } else if classification.erroneous_non_vulnerable() {
                erroneous += 1;
            }
        }
        let compliant = measured - vulnerable - erroneous;
        table.row([
            format!("{} (addresses)", set.label()),
            measured.to_string(),
            count_pct(vulnerable, measured),
            count_pct(erroneous, measured),
            count_pct(compliant, measured),
        ]);

        // Domain-level breakdown: a domain inherits the worst behaviour
        // among its measured hosts (vulnerable > erroneous > compliant).
        let mut d_measured = 0usize;
        let mut d_vulnerable = 0usize;
        let mut d_erroneous = 0usize;
        for domain in ctx.set_domains(set) {
            let classes: Vec<_> = ctx
                .world
                .domain(domain)
                .hosts
                .iter()
                .filter_map(|&h| ctx.initial(h).classification())
                .collect();
            if classes.is_empty() {
                continue;
            }
            d_measured += 1;
            if classes.iter().any(|c| c.vulnerable()) {
                d_vulnerable += 1;
            } else if classes.iter().any(|c| c.erroneous_non_vulnerable()) {
                d_erroneous += 1;
            }
        }
        let d_compliant = d_measured - d_vulnerable - d_erroneous;
        table.row([
            format!("{} (domains)", set.label()),
            d_measured.to_string(),
            count_pct(d_vulnerable, d_measured),
            count_pct(d_erroneous, d_measured),
            count_pct(d_compliant, d_measured),
        ]);

        data.insert(
            set.label().to_string(),
            json!({
                "measured": measured,
                "vulnerable": vulnerable,
                "erroneous": erroneous,
                "compliant": compliant,
                "vulnerable_ci95": crate::stats::proportion_json(vulnerable, measured),
                "erroneous_ci95": crate::stats::proportion_json(erroneous, measured),
                "domains": {
                    "measured": d_measured,
                    "vulnerable": d_vulnerable,
                    "erroneous": d_erroneous,
                    "compliant": d_compliant,
                },
            }),
        );
    }
    Exhibit {
        id: "table4",
        title: "Table 4: SPF initial results breakdown (addresses)",
        paper_claim: "~1 in 6 SPF-validating Alexa addresses vulnerable, ~1 in 10 \
                      for 2-Week MX; ~6% more expand macros erroneously without \
                      being vulnerable; 7,212 vulnerable addresses in total (17% \
                      of tested servers)",
        rendered: table.render(),
        json: Value::Object(data),
    }
}

/// Table 5: best/worst patch rates by TLD.
pub fn table5(ctx: &Context) -> Exhibit {
    let min_group = ((50.0 * ctx.world.config.scale).round() as usize).max(3);
    let mut per_tld: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for &domain in &ctx.campaign.vulnerable_domains {
        let tld = ctx.world.domain(domain).tld.clone();
        let entry = per_tld.entry(tld).or_default();
        entry.1 += 1;
        if ctx.campaign.snapshot.get(&domain) == Some(&SnapshotStatus::Patched) {
            entry.0 += 1;
        }
    }
    let mut rows: Vec<(String, usize, usize, f64)> = per_tld
        .iter()
        .filter(|(_, (_, total))| *total >= min_group)
        .map(|(tld, (patched, total))| {
            (tld.clone(), *patched, *total, *patched as f64 / *total as f64)
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("rates are finite"));

    let mut table = Table::new(["TLD", "# Patched", "# Initially Vulnerable", "% Patched", "Paper"]);
    let paper = |tld: &str| -> String {
        tldmod::TLD_PATCH_RATES
            .iter()
            .find(|(t, _)| *t == tld)
            .map(|(_, r)| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "-".to_string())
    };
    let shown: Vec<&(String, usize, usize, f64)> = if rows.len() <= 10 {
        rows.iter().collect()
    } else {
        rows.iter().take(5).chain(rows.iter().rev().take(5).rev()).collect()
    };
    for (tld, patched, total, rate) in shown {
        table.row([
            format!(".{tld}"),
            patched.to_string(),
            total.to_string(),
            format!("{:.0}%", rate * 100.0),
            paper(tld),
        ]);
    }
    Exhibit {
        id: "table5",
        title: "Table 5: Best/worst patch rates for TLDs with enough vulnerable domains",
        paper_claim: "za 79%, gr 75%, de 46%, eu 29%, tr 28% at the top; \
                      ir/il 3%, by/ru 2%, tw 0% at the bottom; com benchmark 15%",
        rendered: table.render(),
        json: json!(rows
            .iter()
            .map(|(tld, p, t, r)| json!({"tld": tld, "patched": p, "vulnerable": t, "rate": r}))
            .collect::<Vec<_>>()),
    }
}

/// Table 6: package-manager patch timeline (input data, rendered as the
/// paper prints it).
pub fn table6() -> Exhibit {
    let mut table = Table::new([
        "Package Manager",
        "CVE-2021-20314",
        "CVE-2021-33912/13",
    ]);
    for row in PACKAGE_TIMELINE {
        let fmt = |days: Option<u16>, date: Option<&str>, bundled: bool| match (days, date) {
            (Some(d), Some(date)) => {
                let star = if bundled { "*" } else { "" };
                format!("{d}{star} ({date})")
            }
            _ => "Unpatched".to_string(),
        };
        table.row([
            row.name.to_string(),
            fmt(row.days_20314, row.date_20314, false),
            fmt(row.days_33912, row.date_33912, row.bundled),
        ]);
    }
    Exhibit {
        id: "table6",
        title: "Table 6: Patch timeline for package managers (days from disclosure)",
        paper_claim: "Debian patched the day after disclosure; RedHat/Gentoo/Arch \
                      bundled the fix with CVE-2021-20314 before disclosure; \
                      Ubuntu, FreeBSD, NetBSD and SUSE remained unpatched",
        rendered: format!("{}(* fix bundled with the CVE-2021-20314 update)\n", table.render()),
        json: json!(PACKAGE_TIMELINE
            .iter()
            .map(|r| json!({
                "manager": r.name,
                "days_20314": r.days_20314,
                "date_20314": r.date_20314,
                "days_33912": r.days_33912,
                "date_33912": r.date_33912,
                "bundled": r.bundled,
            }))
            .collect::<Vec<_>>()),
    }
}

/// Table 7: macro-expansion behaviours by IP address.
pub fn table7(ctx: &Context) -> Exhibit {
    let mut counts: BTreeMap<MacroBehavior, usize> = BTreeMap::new();
    let mut measured = 0usize;
    let mut multi = 0usize;
    let mut unknown = 0usize;
    for host in ctx.set_hosts(SetFilter::All) {
        let Some(classification) = ctx.initial(host).classification() else {
            continue;
        };
        measured += 1;
        for &behavior in &classification.behaviors {
            *counts.entry(behavior).or_default() += 1;
        }
        if classification.unknown_patterns > 0 {
            unknown += 1;
        }
        if classification.multi_pattern() {
            multi += 1;
        }
    }
    let mut table = Table::new(["Behaviour", "Addresses", "% of measured"]);
    for (behavior, count) in &counts {
        table.row([behavior.label().to_string(), count.to_string(), pct(*count, measured)]);
    }
    if unknown > 0 {
        table.row(["other/unknown".to_string(), unknown.to_string(), pct(unknown, measured)]);
    }
    table.row([
        "≥2 distinct patterns".to_string(),
        multi.to_string(),
        pct(multi, measured),
    ]);
    Exhibit {
        id: "table7",
        title: "Table 7: Behaviours in SPF macro expansion by IP address",
        paper_claim: "~1/6 of measured IPs show the vulnerable pattern; ~6% expand \
                      erroneously in other ways (no expansion, missing truncation, \
                      missing reversal, ...); 2,615 IPs (6%) sent ≥2 distinct \
                      expansion patterns",
        rendered: table.render(),
        json: json!({
            "measured": measured,
            "behaviors": counts.iter().map(|(b, c)| (b.label().to_string(), *c))
                .collect::<BTreeMap<String, usize>>(),
            "unknown_pattern_hosts": unknown,
            "multi_pattern": multi,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> &'static Context {
        crate::testctx::shared()
    }

    #[test]
    fn table1_diagonal_is_total() {
        let ctx = ctx();
        let e = table1(ctx);
        let two_week_total = ctx.set_domains(SetFilter::TwoWeek).len();
        assert_eq!(
            e.json["2-Week MX|2-Week MX"].as_u64().expect("present") as usize,
            two_week_total
        );
        // Scaled Table 1: the 2-week ∩ toplist overlap is ~12.7%.
        let overlap = e.json["2-Week MX|Alexa Top List"].as_u64().expect("present") as f64;
        let share = overlap / two_week_total as f64;
        assert!((0.08..0.18).contains(&share), "overlap share {share}");
    }

    #[test]
    fn table2_has_com_on_top_for_both_sets() {
        let e = table2(ctx());
        assert_eq!(e.json["alexa"][0][0], "com");
        assert_eq!(e.json["two_week"][0][0], "com");
    }

    #[test]
    fn table3_totals_are_consistent() {
        let ctx = ctx();
        let o = address_outcomes(ctx, SetFilter::AlexaTopList);
        assert_eq!(o.total, o.refused + o.nomsg_total);
        assert_eq!(
            o.nomsg_total,
            o.nomsg_failure + o.nomsg_measured + o.nomsg_not_measured
        );
        assert_eq!(o.blank_total, o.nomsg_not_measured, "BlankMsg follows NoMsg misses");
        assert_eq!(
            o.blank_total,
            o.blank_failure + o.blank_measured + o.blank_not_measured
        );
        assert_eq!(o.total_measured, o.nomsg_measured + o.blank_measured);
        // Shape: refusal rate near the calibrated 47%.
        let refuse_rate = o.refused as f64 / o.total as f64;
        assert!((0.35..0.60).contains(&refuse_rate), "refuse rate {refuse_rate}");
    }

    #[test]
    fn table4_vulnerability_rates_have_the_paper_shape() {
        let ctx = ctx();
        let e = table4(ctx);
        let alexa = &e.json["Alexa Top List"];
        let two_week = &e.json["2-Week MX"];
        let rate = |v: &Value| {
            v["vulnerable"].as_f64().expect("number") / v["measured"].as_f64().expect("number")
        };
        let alexa_rate = rate(alexa);
        let two_week_rate = rate(two_week);
        assert!((0.10..0.28).contains(&alexa_rate), "alexa {alexa_rate}");
        // The two-set ordering (Alexa ~1/6 vs 2-Week ~1/10) is only
        // statistically meaningful with enough measured 2-Week hosts.
        if two_week["measured"].as_u64().expect("n") >= 100 {
            assert!(
                alexa_rate > two_week_rate,
                "Alexa addresses are more vulnerable than 2-Week MX \
                 ({alexa_rate} vs {two_week_rate})"
            );
        }
    }

    #[test]
    fn table5_orders_by_rate_and_tw_is_zero_when_present() {
        let ctx = ctx();
        let e = table5(ctx);
        let rows = e.json.as_array().expect("array");
        let rates: Vec<f64> = rows.iter().map(|r| r["rate"].as_f64().expect("rate")).collect();
        for pair in rates.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "sorted descending");
        }
        for row in rows {
            if row["tld"] == "tw" {
                assert_eq!(row["patched"], 0, "tw never patches (Table 5)");
            }
        }
    }

    #[test]
    fn table6_matches_static_data() {
        let e = table6();
        assert!(e.rendered.contains("Debian"));
        assert!(e.rendered.contains("Unpatched"));
        assert!(e.rendered.contains("2022-01-20"));
        assert_eq!(e.json.as_array().expect("array").len(), 9);
    }

    #[test]
    fn table7_multi_pattern_share_is_small() {
        let ctx = ctx();
        let e = table7(ctx);
        let measured = e.json["measured"].as_u64().expect("n") as f64;
        let multi = e.json["multi_pattern"].as_u64().expect("n") as f64;
        assert!(measured > 0.0);
        let share = multi / measured;
        assert!((0.0..0.15).contains(&share), "multi share {share}");
    }
}
