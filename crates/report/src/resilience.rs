//! Measurement resilience under injected network faults.
//!
//! The paper's longitudinal campaign ran over the real Internet, where
//! probes are lost to DNS timeouts, greylisting tempfails, and flaky
//! hosts. This exhibit makes the cost of that noise — and the recall the
//! retry/backoff policy buys back — a first-class figure: the same small
//! world is measured fault-free, under 10% DNS datagram loss with no
//! retries, and under the same loss with the standard retry policy. The
//! per-fault-type counters come straight from
//! [`CampaignData::network`](spfail_prober::CampaignData), so the table
//! doubles as a check that the fault-injection subsystem's bookkeeping
//! reaches the report layer.

use serde_json::json;
use spfail_mta::{ConnectPolicy, SmtpQuirk};
use spfail_netsim::{FaultPlan, FaultProfile};
use spfail_prober::{CampaignBuilder, CampaignData, RetryPolicy};
use spfail_world::{HostId, World, WorldConfig};

use crate::pipeline::{Context, Source, StreamContext};
use crate::table::{pct, Table};
use crate::Exhibit;

/// DNS datagram drop probability used by the fault scenarios.
const DNS_DROP: f64 = 0.1;

/// Scale of the dedicated resilience world. Deliberately small: the
/// exhibit runs three full campaigns, and every `all_exhibits` caller
/// (including the end-to-end test) pays for them.
const SCALE: f64 = 0.004;

/// Ground truth: the initially vulnerable hosts a *fault-free* campaign
/// could have measured — reachable, and answering SMTP far enough into
/// the session for the SPF fingerprint to show.
fn measurable_hosts(world: &World) -> Vec<HostId> {
    world
        .initially_vulnerable_hosts()
        .into_iter()
        .filter(|&h| {
            let p = &world.host(h).profile;
            p.connect == ConnectPolicy::Accept
                && matches!(p.quirk, SmtpQuirk::None | SmtpQuirk::RejectMessage(_))
        })
        .collect()
}

/// How many of the measurable hosts a campaign actually tracked.
fn found(data: &CampaignData, measurable: &[HostId]) -> usize {
    measurable
        .iter()
        .filter(|h| data.tracked.contains(h))
        .count()
}

/// False-negative rates under fault load, with and without retries.
pub fn resilience(ctx: &Context) -> Exhibit {
    resilience_impl(&Source::Eager(ctx))
}

/// The resilience exhibit from a streaming run.
pub fn resilience_streaming(sc: &StreamContext) -> Exhibit {
    resilience_impl(&Source::Streaming(sc))
}

fn resilience_impl(src: &Source) -> Exhibit {
    // A dedicated small world keyed to the run's seed: the exhibit is
    // deterministic per report run but independent of the main scale.
    let seed = src.config().seed;
    let build = || {
        World::generate(WorldConfig {
            scale: SCALE,
            ..WorldConfig::small(seed)
        })
    };
    let measurable = measurable_hosts(&build());
    let faults = FaultProfile {
        dns: FaultPlan::dns_timeout(DNS_DROP),
        ..FaultProfile::NONE
    };
    let scenarios: [(&str, CampaignBuilder); 3] = [
        ("fault-free", CampaignBuilder::new()),
        ("10% DNS loss", CampaignBuilder::new().faults(faults)),
        (
            "10% DNS loss + retry",
            CampaignBuilder::new()
                .faults(faults)
                .retry(RetryPolicy::standard()),
        ),
    ];

    let mut table = Table::new([
        "Scenario",
        "Found / Measurable",
        "Recall",
        "FN rate",
        "DNS timeouts",
        "Retries",
        "Recovered",
    ]);
    let mut rows = Vec::new();
    for (name, builder) in scenarios {
        let data = builder.run(&build()).data;
        let hit = found(&data, &measurable);
        let net = &data.network;
        table.row([
            name.to_string(),
            format!("{hit} / {}", measurable.len()),
            pct(hit, measurable.len()),
            pct(measurable.len() - hit, measurable.len()),
            net.dns_timeouts.to_string(),
            net.probe_retries.to_string(),
            net.probes_recovered.to_string(),
        ]);
        rows.push(json!({
            "scenario": name,
            "measurable": measurable.len(),
            "found": hit,
            "dns_timeouts": net.dns_timeouts,
            "datagrams_dropped": net.datagrams_dropped,
            "probe_retries": net.probe_retries,
            "probes_recovered": net.probes_recovered,
        }));
    }

    Exhibit {
        id: "resilience",
        title: "Measurement resilience: vulnerable-host recall under 10% DNS loss",
        paper_claim: "the campaign re-probed hosts whose measurements failed \
                      transiently; §5 reports successful measurements \
                      stabilising despite network noise",
        rendered: table.render(),
        json: json!({ "dns_drop": DNS_DROP, "scale": SCALE, "scenarios": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx;

    #[test]
    fn retry_never_loses_recall_and_counters_are_live() {
        let exhibit = resilience(testctx::shared());
        let rows = exhibit.json["scenarios"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        let found = |i: usize| rows[i]["found"].as_u64().unwrap();
        let (clean, bare, retried) = (found(0), found(1), found(2));
        assert!(retried >= bare, "retry recall regressed: {retried} < {bare}");
        // No upper-bound check against the fault-free row: the world
        // itself greylists, and retries recover those tempfails too, so
        // "faults + retry" may legitimately beat "fault-free, no retry".
        assert!(clean >= bare, "injected loss must not improve bare recall");
        assert_eq!(rows[0]["probe_retries"].as_u64(), Some(0));
        assert!(rows[1]["datagrams_dropped"].as_u64().unwrap() > 0);
        assert!(rows[2]["probe_retries"].as_u64().unwrap() > 0);
        assert!(exhibit.rendered.contains("10% DNS loss + retry"));
    }
}
