//! The world-wide folds behind Tables 1–4 and 7.
//!
//! Those exhibits summarize *every* domain and host — set sizes and
//! overlaps, TLD histograms, per-set probe-outcome ladders, macro
//! behaviour counts. The eager pipeline could walk the materialized
//! [`World`] for each table; a streaming pipeline has no world to walk.
//! Instead both modes fold the same [`WorldAggregates`] — eager from the
//! world's domain vector, streaming from a fresh [`LazyWorld`] synthesis
//! pass — over the campaign's per-host [`HostMask`] column. One
//! implementation, two domain iterators: the exhibits are equal across
//! modes by construction, and the streaming fold's live state is a few
//! fixed-size tables plus one byte of set membership per host (dropped
//! when the fold finishes).

use std::collections::BTreeMap;

use serde_json::{json, Value};
use spfail_prober::{HostClass, HostMask, BEHAVIOR_BITS};
use spfail_world::{DomainRecord, LazyWorld, World, WorldConfig};

use crate::pipeline::SetFilter;

/// The domain sets the exhibits report on, in [`SetFilter::index`]
/// order.
pub const REPORT_SETS: [SetFilter; 5] = [
    SetFilter::All,
    SetFilter::AlexaTopList,
    SetFilter::Alexa1000,
    SetFilter::TwoWeek,
    SetFilter::TopProviders,
];

/// Table 1's row/column sets, in the paper's order.
pub const TABLE1_SETS: [SetFilter; 3] = [
    SetFilter::TwoWeek,
    SetFilter::Alexa1000,
    SetFilter::AlexaTopList,
];

impl SetFilter {
    /// Index into [`REPORT_SETS`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            SetFilter::All => 0,
            SetFilter::AlexaTopList => 1,
            SetFilter::Alexa1000 => 2,
            SetFilter::TwoWeek => 3,
            SetFilter::TopProviders => 4,
        }
    }

    /// Whether `domain` belongs to this set — the record-level form of
    /// [`crate::pipeline::Context::in_set`]. `cutoff` is the world's
    /// Alexa-1000 rank cutoff.
    pub fn member(self, domain: &DomainRecord, cutoff: usize) -> bool {
        match self {
            SetFilter::All => true,
            SetFilter::AlexaTopList => domain.in_alexa(),
            SetFilter::Alexa1000 => domain.in_alexa_top(cutoff),
            SetFilter::TwoWeek => domain.in_two_week(),
            SetFilter::TopProviders => domain.top_provider,
        }
    }
}

/// Per-set NoMsg/BlankMsg outcome counts (one Table 3 column).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Outcomes {
    /// Domains or addresses tested.
    pub total: usize,
    /// All connections refused.
    pub refused: usize,
    /// Reached the NoMsg test.
    pub nomsg_total: usize,
    /// NoMsg ended in SMTP failure.
    pub nomsg_failure: usize,
    /// NoMsg measured SPF.
    pub nomsg_measured: usize,
    /// NoMsg completed without measuring.
    pub nomsg_not_measured: usize,
    /// Reached the BlankMsg test.
    pub blank_total: usize,
    /// BlankMsg ended in SMTP failure.
    pub blank_failure: usize,
    /// BlankMsg measured SPF.
    pub blank_measured: usize,
    /// BlankMsg completed without measuring.
    pub blank_not_measured: usize,
    /// Measured by either test.
    pub total_measured: usize,
}

impl Outcomes {
    /// The machine-readable form Table 3 emits.
    pub fn to_json(&self) -> Value {
        json!({
            "total": self.total,
            "refused": self.refused,
            "nomsg_total": self.nomsg_total,
            "nomsg_failure": self.nomsg_failure,
            "nomsg_measured": self.nomsg_measured,
            "nomsg_not_measured": self.nomsg_not_measured,
            "blank_total": self.blank_total,
            "blank_failure": self.blank_failure,
            "blank_measured": self.blank_measured,
            "blank_not_measured": self.blank_not_measured,
            "total_measured": self.total_measured,
        })
    }
}

/// Table 4's measured/vulnerable/erroneous triple for one set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// SPF-measured population.
    pub measured: usize,
    /// Showing the vulnerable fingerprint.
    pub vulnerable: usize,
    /// Expanding erroneously without being vulnerable.
    pub erroneous: usize,
}

/// Everything Tables 1–4 and 7 read about the world at large, folded in
/// one pass over the domain stream. Indexed by [`SetFilter::index`]
/// where per-set.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldAggregates {
    /// Domains per set.
    pub set_counts: [usize; 5],
    /// Pairwise overlap counts among [`TABLE1_SETS`].
    pub overlaps: [[usize; 3]; 3],
    /// TLD histogram of the Alexa Top List.
    pub tld_alexa: BTreeMap<String, usize>,
    /// TLD histogram of the 2-Week MX set.
    pub tld_two_week: BTreeMap<String, usize>,
    /// Address-level Table 3 outcomes per set.
    pub addresses: [Outcomes; 5],
    /// Domain-level Table 3 outcomes per set.
    pub domains: [Outcomes; 5],
    /// Address-level Table 4 breakdown per set.
    pub table4_addresses: [Breakdown; 5],
    /// Domain-level Table 4 breakdown per set.
    pub table4_domains: [Breakdown; 5],
    /// Hosts showing each behaviour, indexed by [`BEHAVIOR_BITS`].
    pub behavior_counts: [usize; 9],
    /// SPF-measured hosts (Table 7's denominator).
    pub measured_hosts: usize,
    /// Measured hosts with at least one unknown expansion pattern.
    pub unknown_pattern_hosts: usize,
    /// Measured hosts with ≥2 distinct expansion patterns.
    pub multi_pattern_hosts: usize,
}

impl WorldAggregates {
    /// Fold from a materialized world (the eager pipeline).
    pub fn from_world(world: &World, masks: &[u32]) -> WorldAggregates {
        let mut fold = Fold::new(masks.len());
        let cutoff = world.config.top1000_cutoff();
        for domain in &world.domains {
            fold.domain(domain, masks, cutoff);
        }
        fold.finish(masks)
    }

    /// Fold from a fresh synthesis pass (the streaming pipeline): the
    /// stream yields each domain once, in id order, and no record
    /// outlives its step.
    pub fn from_config(config: &WorldConfig, masks: &[u32]) -> WorldAggregates {
        let mut fold = Fold::new(masks.len());
        let cutoff = config.top1000_cutoff();
        for step in LazyWorld::new(config.clone()) {
            fold.domain(&step.domain, masks, cutoff);
        }
        fold.finish(masks)
    }
}

/// The in-flight fold state: the aggregates under construction plus one
/// byte of set membership per host — the only O(hosts) term, dropped at
/// [`Fold::finish`].
struct Fold {
    set_counts: [usize; 5],
    overlaps: [[usize; 3]; 3],
    tld_alexa: BTreeMap<String, usize>,
    tld_two_week: BTreeMap<String, usize>,
    domains: [Outcomes; 5],
    table4_domains: [Breakdown; 5],
    host_sets: Vec<u8>,
}

impl Fold {
    fn new(hosts: usize) -> Fold {
        Fold {
            set_counts: [0; 5],
            overlaps: [[0; 3]; 3],
            tld_alexa: BTreeMap::new(),
            tld_two_week: BTreeMap::new(),
            domains: [Outcomes::default(); 5],
            table4_domains: [Breakdown::default(); 5],
            host_sets: vec![0u8; hosts],
        }
    }

    /// Fold one domain in.
    fn domain(&mut self, domain: &DomainRecord, masks: &[u32], cutoff: usize) {
        let mut bits = 0u8;
        for (i, set) in REPORT_SETS.iter().enumerate() {
            if set.member(domain, cutoff) {
                bits |= 1 << i;
                self.set_counts[i] += 1;
            }
        }
        for (r, row_set) in TABLE1_SETS.iter().enumerate() {
            if bits & (1 << row_set.index()) == 0 {
                continue;
            }
            for (c, col_set) in TABLE1_SETS.iter().enumerate() {
                if bits & (1 << col_set.index()) != 0 {
                    self.overlaps[r][c] += 1;
                }
            }
        }
        if bits & (1 << SetFilter::AlexaTopList.index()) != 0 {
            *self.tld_alexa.entry(domain.tld.clone()).or_default() += 1;
        }
        if bits & (1 << SetFilter::TwoWeek.index()) != 0 {
            *self.tld_two_week.entry(domain.tld.clone()).or_default() += 1;
        }
        for &host in &domain.hosts {
            self.host_sets[host.0 as usize] |= bits;
        }

        // The domain-level outcome ladder, computed once from the member
        // hosts' masks and applied to every set holding the domain.
        let ms: Vec<HostMask> = domain
            .hosts
            .iter()
            .map(|h| HostMask(masks[h.0 as usize]))
            .collect();
        let all_refused = ms.iter().all(|m| m.nomsg_refused());
        let any_nomsg_measured = ms.iter().any(|m| m.nomsg_measured());
        let all_nomsg_failed = ms
            .iter()
            .filter(|m| !m.nomsg_refused())
            .all(|m| m.nomsg_failure());
        let blank_ran = ms.iter().any(|m| m.blank_present());
        let any_blank_measured = ms.iter().any(|m| m.blank_measured());
        let all_blank_failed = ms
            .iter()
            .filter(|m| m.blank_present())
            .all(|m| m.blank_failure());
        let any_measured = ms.iter().any(|m| m.measured());
        let any_vulnerable = ms.iter().any(|m| m.vulnerable());
        let any_erroneous = ms.iter().any(|m| m.erroneous());
        for i in 0..REPORT_SETS.len() {
            if bits & (1 << i) == 0 {
                continue;
            }
            let o = &mut self.domains[i];
            o.total += 1;
            if all_refused {
                o.refused += 1;
                continue;
            }
            o.nomsg_total += 1;
            if any_nomsg_measured {
                o.nomsg_measured += 1;
            } else if all_nomsg_failed {
                o.nomsg_failure += 1;
            } else {
                o.nomsg_not_measured += 1;
            }
            if blank_ran {
                o.blank_total += 1;
                if any_blank_measured {
                    o.blank_measured += 1;
                } else if all_blank_failed {
                    o.blank_failure += 1;
                } else {
                    o.blank_not_measured += 1;
                }
            }
            if any_measured {
                o.total_measured += 1;
                let b = &mut self.table4_domains[i];
                b.measured += 1;
                if any_vulnerable {
                    b.vulnerable += 1;
                } else if any_erroneous {
                    b.erroneous += 1;
                }
            }
        }
    }

    /// Finish: derive the address-level tables from the membership
    /// column and the masks, and drop the column.
    fn finish(self, masks: &[u32]) -> WorldAggregates {
        let mut addresses = [Outcomes::default(); 5];
        let mut table4_addresses = [Breakdown::default(); 5];
        let mut behavior_counts = [0usize; 9];
        let mut measured_hosts = 0usize;
        let mut unknown_pattern_hosts = 0usize;
        let mut multi_pattern_hosts = 0usize;
        for (idx, &raw) in masks.iter().enumerate() {
            let mask = HostMask(raw);
            let bits = self.host_sets[idx];
            for i in 0..REPORT_SETS.len() {
                if bits & (1 << i) == 0 {
                    continue;
                }
                let o = &mut addresses[i];
                o.total += 1;
                if mask.nomsg_refused() {
                    o.refused += 1;
                } else {
                    o.nomsg_total += 1;
                    if mask.nomsg_measured() {
                        o.nomsg_measured += 1;
                    } else if mask.nomsg_failure() {
                        o.nomsg_failure += 1;
                    } else {
                        o.nomsg_not_measured += 1;
                    }
                    if mask.blank_present() {
                        o.blank_total += 1;
                        if mask.blank_measured() {
                            o.blank_measured += 1;
                        } else if mask.blank_failure() {
                            o.blank_failure += 1;
                        } else {
                            o.blank_not_measured += 1;
                        }
                    }
                    if mask.class() == HostClass::SpfMeasured {
                        o.total_measured += 1;
                    }
                }
                if mask.measured() {
                    let b = &mut table4_addresses[i];
                    b.measured += 1;
                    if mask.vulnerable() {
                        b.vulnerable += 1;
                    } else if mask.erroneous() {
                        b.erroneous += 1;
                    }
                }
            }
            if mask.measured() {
                measured_hosts += 1;
                for (i, count) in behavior_counts.iter_mut().enumerate() {
                    if mask.behavior(i) {
                        *count += 1;
                    }
                }
                if mask.unknown_patterns() {
                    unknown_pattern_hosts += 1;
                }
                if mask.multi_pattern() {
                    multi_pattern_hosts += 1;
                }
            }
        }
        debug_assert_eq!(BEHAVIOR_BITS.len(), behavior_counts.len());
        WorldAggregates {
            set_counts: self.set_counts,
            overlaps: self.overlaps,
            tld_alexa: self.tld_alexa,
            tld_two_week: self.tld_two_week,
            addresses,
            domains: self.domains,
            table4_addresses,
            table4_domains: self.table4_domains,
            behavior_counts,
            measured_hosts,
            unknown_pattern_hosts,
            multi_pattern_hosts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_prober::{CampaignBuilder, CampaignSummary};

    /// The two fold inputs — the materialized world and the synthesis
    /// stream — must produce identical aggregates.
    #[test]
    fn world_and_lazy_folds_agree() {
        let config = WorldConfig {
            scale: 0.004,
            ..WorldConfig::small(7)
        };
        let world = World::generate(config.clone());
        let run = CampaignBuilder::new().run(&world);
        let masks = CampaignSummary::from_data(&run.data).masks;
        let eager = WorldAggregates::from_world(&world, &masks);
        let lazy = WorldAggregates::from_config(&config, &masks);
        assert_eq!(eager, lazy);
        // Shape sanity: every host serves some domain, so the All column
        // covers the whole mask column.
        assert_eq!(eager.addresses[SetFilter::All.index()].total, masks.len());
        assert_eq!(eager.set_counts[SetFilter::All.index()], world.domains.len());
        assert!(eager.measured_hosts > 0);
    }
}
