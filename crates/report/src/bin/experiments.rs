//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p spfail-report --release --bin experiments -- \
//!     [--scale 0.05] [--seed 0x5bf2a117] [--json exhibits.json] [--md EXPERIMENTS.md] \
//!     [--only fig7,table3] [--streaming]
//! ```
//!
//! Prints each exhibit, and optionally writes the machine-readable JSON
//! and a paper-vs-measured markdown record. `--only` selects exhibits
//! from the registry by id (repeatable, comma-separable). `--streaming`
//! runs the bounded-memory pipeline — same exhibits, bit for bit,
//! without ever materializing the world.

use std::fmt::Write as _;
use std::time::Instant;

use spfail_report::{
    all_exhibits, all_exhibits_streaming, exhibit_by_id, Context, Exhibit, StreamContext,
    EXHIBIT_REGISTRY,
};

struct Args {
    scale: f64,
    seed: u64,
    json_path: Option<String>,
    md_path: Option<String>,
    latex_dir: Option<String>,
    only: Vec<String>,
    streaming: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: 0x5bf2_a117,
        json_path: None,
        md_path: None,
        latex_dir: None,
        only: Vec::new(),
        streaming: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("numeric scale"),
            "--seed" => {
                let raw = value("--seed");
                args.seed = raw
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).expect("hex seed"))
                    .unwrap_or_else(|| raw.parse().expect("numeric seed"));
            }
            "--json" => args.json_path = Some(value("--json")),
            "--md" => args.md_path = Some(value("--md")),
            "--latex" => args.latex_dir = Some(value("--latex")),
            "--only" => args
                .only
                .extend(value("--only").split(',').map(str::to_string)),
            "--streaming" => args.streaming = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale F] [--seed N] [--json PATH] [--md PATH] \
                     [--latex DIR] [--only ID[,ID...]] [--streaming]"
                );
                eprintln!(
                    "exhibit ids: {}",
                    EXHIBIT_REGISTRY
                        .iter()
                        .map(|e| e.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One pipeline run, whichever mode `--streaming` picked.
enum Run {
    Eager(Box<Context>),
    Streaming(Box<StreamContext>),
}

/// The selected exhibits: the whole registry, or the `--only` ids in
/// the order given.
fn selected_exhibits(args: &Args, run: &Run) -> Vec<Exhibit> {
    if args.only.is_empty() {
        return match run {
            Run::Eager(ctx) => all_exhibits(ctx),
            Run::Streaming(sc) => all_exhibits_streaming(sc),
        };
    }
    args.only
        .iter()
        .map(|id| {
            let entry = exhibit_by_id(id).unwrap_or_else(|| {
                panic!(
                    "unknown exhibit id {id:?}; known ids: {}",
                    EXHIBIT_REGISTRY
                        .iter()
                        .map(|e| e.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            });
            match run {
                Run::Eager(ctx) => (entry.build)(ctx),
                Run::Streaming(sc) => (entry.build_streaming)(sc),
            }
        })
        .collect()
}

/// Re-parse a rendered ASCII table back into a [`Table`] for LaTeX
/// output. Returns `None` for exhibits that are not plain tables (the
/// sparkline figures).
fn rebuild_table(rendered: &str) -> Option<spfail_report::Table> {
    let mut lines = rendered.lines();
    let header = lines.next()?;
    let rule = lines.next()?;
    if !rule.starts_with("---") || header.contains('[') {
        return None;
    }
    // Column boundaries: split on runs of 2+ spaces in the header.
    let headers: Vec<String> = header
        .split("  ")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let mut table = spfail_report::Table::new(headers);
    for line in lines {
        if line.trim().is_empty() || line.starts_with('(') {
            break;
        }
        let cells: Vec<String> = line
            .split("  ")
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if !cells.is_empty() {
            table.row(cells);
        }
    }
    Some(table)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "{} world at scale {} (seed 0x{:x}) and running the full campaign...",
        if args.streaming { "streaming" } else { "generating" },
        args.scale,
        args.seed
    );
    let started = Instant::now();
    let run = if args.streaming {
        Run::Streaming(Box::new(StreamContext::run(args.scale, args.seed)))
    } else {
        Run::Eager(Box::new(Context::run(args.scale, args.seed)))
    };
    // The world-wide counts come from the materialized world eagerly and
    // from the aggregates fold when streaming (index 0 = the All set).
    let (domains, hosts) = match &run {
        Run::Eager(ctx) => (ctx.world.domains.len(), ctx.world.hosts.len()),
        Run::Streaming(sc) => (sc.aggregates.set_counts[0], sc.summary.masks.len()),
    };
    let campaign = match &run {
        Run::Eager(ctx) => &ctx.campaign,
        Run::Streaming(sc) => &sc.campaign,
    };
    eprintln!(
        "world: {} domains, {} hosts, {} initially vulnerable hosts, {} vulnerable domains \
         ({:.1}s)",
        domains,
        hosts,
        campaign.tracked.len(),
        campaign.vulnerable_domains.len(),
        started.elapsed().as_secs_f64()
    );

    eprintln!(
        "ethics audit: {} contacts admitted immediately, {} waited 90s spacing, \
         {} greylist retries (8 min each), {} duplicate probes suppressed, \
         peak concurrency {}",
        campaign.ethics.immediate,
        campaign.ethics.spaced,
        campaign.ethics.greylist_waits,
        campaign.ethics.dedup_suppressed,
        campaign.ethics.peak_concurrency,
    );

    let exhibits = selected_exhibits(&args, &run);
    let mut json_out = serde_json::Map::new();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `cargo run -p spfail-report --release --bin experiments -- \
         --scale {} --seed 0x{:x}`.\n\n\
         Scale {} means every population count is ~{:.0}% of the paper's; all\n\
         *rates and shapes* are directly comparable. Absolute counts scale\n\
         linearly (validated by the world-generation tests).\n\n\
         World: {} domains on {} server addresses; {} addresses measured\n\
         vulnerable, hosting {} domains.\n\n\
         Companion artifacts from the same run (when the flags were given):\n\
         `exhibits.json` (per-exhibit data incl. Wilson 95% intervals) and\n\
         `latex/*.tex` (paper-ready tabulars).\n",
        args.scale,
        args.seed,
        args.scale,
        args.scale * 100.0,
        domains,
        hosts,
        campaign.tracked.len(),
        campaign.vulnerable_domains.len(),
    );

    for exhibit in &exhibits {
        println!("================================================================");
        println!("{}", exhibit.title);
        println!("================================================================");
        println!("{}", exhibit.rendered);
        json_out.insert(exhibit.id.to_string(), exhibit.json.clone());

        let _ = writeln!(md, "## {}\n", exhibit.title);
        let _ = writeln!(md, "**Paper:** {}\n", exhibit.paper_claim);
        let _ = writeln!(md, "**Measured:**\n\n```text\n{}```\n", exhibit.rendered);
    }

    if let Some(dir) = &args.latex_dir {
        std::fs::create_dir_all(dir).expect("create latex output dir");
        let mut written = 0;
        for exhibit in &exhibits {
            // Only tabular exhibits translate to LaTeX; the time-series
            // figures live in the JSON output for plotting.
            let Some(table) = rebuild_table(&exhibit.rendered) else {
                continue;
            };
            let tex = table.render_latex(exhibit.title, &format!("tab:{}", exhibit.id));
            std::fs::write(format!("{dir}/{}.tex", exhibit.id), tex)
                .expect("write latex exhibit");
            written += 1;
        }
        eprintln!("wrote {written} LaTeX tables to {dir}/");
    }
    if let Some(path) = &args.json_path {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&serde_json::Value::Object(json_out))
                .expect("serializable"),
        )
        .expect("write json output");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.md_path {
        std::fs::write(path, md).expect("write markdown output");
        eprintln!("wrote {path}");
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}
