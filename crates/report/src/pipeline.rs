//! One full reproduction run, shared by every exhibit builder.

use std::collections::BTreeSet;

use spfail_netsim::PolicyCacheStats;
use spfail_notify::{NotificationCampaign, NotificationRecord, NotificationReport, PixelLog};
use spfail_prober::{
    CampaignBuilder, CampaignData, CampaignSummary, HostClass, HostInitialResult,
    StreamedCampaign,
};
use spfail_world::{
    DomainId, DomainRecord, HostId, HostRecord, Population, SparsePopulation, World, WorldConfig,
};

use crate::aggregates::WorldAggregates;

/// The domain groups the paper reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetFilter {
    /// Every domain in either set.
    All,
    /// The Alexa Top List.
    AlexaTopList,
    /// The Alexa Top 1000 subset.
    Alexa1000,
    /// The 2-Week MX set.
    TwoWeek,
    /// The Top Email Providers reference set.
    TopProviders,
}

impl SetFilter {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SetFilter::All => "All",
            SetFilter::AlexaTopList => "Alexa Top List",
            SetFilter::Alexa1000 => "Alexa 1000",
            SetFilter::TwoWeek => "2-Week MX",
            SetFilter::TopProviders => "Top Email Providers",
        }
    }
}

/// The results of one end-to-end run.
pub struct Context {
    /// The generated world.
    pub world: World,
    /// Measurement campaign results.
    pub campaign: CampaignData,
    /// Notification records.
    pub notifications: Vec<NotificationRecord>,
    /// The §7.7 funnel.
    pub funnel: NotificationReport,
    /// The tracking-pixel log.
    pub pixels: PixelLog,
    /// Compiled-policy cache tallies from the campaign run, `None` when
    /// the campaign ran without the cache (or was rebuilt from bare
    /// [`CampaignData`]). Every other exhibit is identical either way —
    /// the cache is measurement-transparent — so only the
    /// `cache_efficiency` exhibit reads this.
    pub cache: Option<PolicyCacheStats>,
    /// The world-wide folds behind Tables 1–4 and 7.
    pub aggregates: WorldAggregates,
}

impl Context {
    /// Run the whole reproduction at `scale` with `seed`.
    pub fn run(scale: f64, seed: u64) -> Context {
        let world = World::generate(WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        });
        // Drive the staged session explicitly — the report pipeline is
        // the reference consumer of the stage-by-stage API.
        let (campaign, cache) = {
            let mut session = CampaignBuilder::new().session(&world);
            session.initial_sweep();
            while session.advance_round().is_some() {}
            let run = session.finish();
            (run.data, run.cache)
        };
        let mut ctx = Context::from_campaign(world, campaign);
        ctx.cache = cache;
        ctx
    }

    /// Build the exhibit context from an already-measured campaign —
    /// e.g. one continued from a [`spfail_prober::Session`] checkpoint.
    /// `campaign` must have been measured against `world`.
    pub fn from_campaign(world: World, campaign: CampaignData) -> Context {
        let mut pixels = PixelLog::new();
        // The notification list is the *measured* vulnerable set — domains
        // hosted on addresses whose initial probe showed the fingerprint —
        // exactly as the paper built it.
        let (notifications, funnel) =
            NotificationCampaign::run(&world, &campaign.vulnerable_domains, &mut pixels);
        let aggregates =
            WorldAggregates::from_world(&world, &CampaignSummary::from_data(&campaign).masks);
        Context {
            world,
            campaign,
            notifications,
            funnel,
            pixels,
            cache: None,
            aggregates,
        }
    }

    /// Whether `domain` is in `set`.
    pub fn in_set(&self, domain: DomainId, set: SetFilter) -> bool {
        set.member(self.world.domain(domain), self.world.config.top1000_cutoff())
    }

    /// All domains in `set`.
    pub fn set_domains(&self, set: SetFilter) -> Vec<DomainId> {
        (0..self.world.domains.len() as u32)
            .map(DomainId)
            .filter(|&d| self.in_set(d, set))
            .collect()
    }

    /// Unique hosts serving any domain of `set`.
    pub fn set_hosts(&self, set: SetFilter) -> Vec<HostId> {
        let mut hosts = BTreeSet::new();
        for d in self.set_domains(set) {
            hosts.extend(self.world.domain(d).hosts.iter().copied());
        }
        hosts.into_iter().collect()
    }

    /// The initial probe results for one host.
    pub fn initial(&self, host: HostId) -> &HostInitialResult {
        self.campaign
            .initial
            .results
            .get(&host)
            .expect("every host was probed in the initial sweep")
    }

    /// Table 3's outcome class for one host.
    pub fn host_class(&self, host: HostId) -> HostClass {
        self.initial(host).class()
    }

    /// Initially vulnerable domains restricted to `set`.
    pub fn vulnerable_domains_in(&self, set: SetFilter) -> Vec<DomainId> {
        self.campaign
            .vulnerable_domains
            .iter()
            .copied()
            .filter(|&d| self.in_set(d, set))
            .collect()
    }
}

/// The results of one end-to-end *streaming* run: the same campaign as
/// [`Context::run`], executed without ever materializing the world. The
/// world-wide exhibit inputs live in the folded [`WorldAggregates`] and
/// the campaign's mask column; everything domain- or host-specific the
/// exhibits read (vulnerable domains, tracked hosts and their full MX
/// groups) comes from the retained [`SparsePopulation`].
pub struct StreamContext {
    /// The configuration the streamed world was synthesized from.
    pub config: WorldConfig,
    /// The retained O(tracked) population the longitudinal and
    /// notification phases ran over.
    pub population: SparsePopulation,
    /// Measurement campaign results (`initial` is empty by design — the
    /// mask column in [`StreamContext::summary`] replaces it).
    pub campaign: CampaignData,
    /// The cross-mode campaign summary, including the mask column.
    pub summary: CampaignSummary,
    /// The world-wide folds behind Tables 1–4 and 7.
    pub aggregates: WorldAggregates,
    /// Notification records.
    pub notifications: Vec<NotificationRecord>,
    /// The §7.7 funnel.
    pub funnel: NotificationReport,
    /// The tracking-pixel log.
    pub pixels: PixelLog,
    /// Compiled-policy cache tallies, as in [`Context::cache`].
    pub cache: Option<PolicyCacheStats>,
}

impl StreamContext {
    /// Run the whole reproduction at `scale` with `seed` in streaming
    /// mode — the bounded-memory counterpart of [`Context::run`],
    /// producing bit-for-bit the same exhibits.
    pub fn run(scale: f64, seed: u64) -> StreamContext {
        let config = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        // The same sequential staged drive as Context::run, over the
        // streamed sweep's handoff instead of an eager initial sweep.
        let streamed = StreamedCampaign::sweep(CampaignBuilder::new(), config.clone());
        let mut session = streamed
            .session()
            .expect("a fresh handoff state is self-consistent");
        while session.advance_round().is_some() {}
        let run = session.finish();
        let population = streamed.into_population();
        let aggregates = WorldAggregates::from_config(&config, &run.summary.masks);
        let mut pixels = PixelLog::new();
        let (notifications, funnel) = NotificationCampaign::run(
            &population,
            &run.summary.vulnerable_domains,
            &mut pixels,
        );
        StreamContext {
            config,
            population,
            campaign: run.data,
            summary: run.summary,
            aggregates,
            notifications,
            funnel,
            pixels,
            cache: run.cache,
        }
    }

    /// Whether `domain` is in `set`. Valid for retained domains only —
    /// which is every domain an exhibit asks about.
    pub fn in_set(&self, domain: DomainId, set: SetFilter) -> bool {
        set.member(self.population.domain(domain), self.config.top1000_cutoff())
    }
}

/// One pipeline run, whichever mode produced it: the exhibit builders
/// are written against this so eager and streaming exhibits share one
/// implementation. Lookups of specific domains or hosts are only valid
/// for the retained subset in streaming mode — the exhibits only ask
/// about vulnerable domains and tracked hosts, which are always
/// retained.
pub enum Source<'a> {
    /// An eager [`Context::run`].
    Eager(&'a Context),
    /// A streaming [`StreamContext::run`].
    Streaming(&'a StreamContext),
}

impl Source<'_> {
    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        match self {
            Source::Eager(ctx) => &ctx.world.config,
            Source::Streaming(sc) => &sc.config,
        }
    }

    /// The campaign's longitudinal data.
    pub fn campaign(&self) -> &CampaignData {
        match self {
            Source::Eager(ctx) => &ctx.campaign,
            Source::Streaming(sc) => &sc.campaign,
        }
    }

    /// Look up a domain (streaming: retained domains only).
    pub fn domain(&self, id: DomainId) -> &DomainRecord {
        match self {
            Source::Eager(ctx) => ctx.world.domain(id),
            Source::Streaming(sc) => sc.population.domain(id),
        }
    }

    /// Look up a host (streaming: retained hosts only).
    pub fn host(&self, id: HostId) -> &HostRecord {
        match self {
            Source::Eager(ctx) => ctx.world.host(id),
            Source::Streaming(sc) => sc.population.host(id),
        }
    }

    /// The world-wide folds.
    pub fn aggregates(&self) -> &WorldAggregates {
        match self {
            Source::Eager(ctx) => &ctx.aggregates,
            Source::Streaming(sc) => &sc.aggregates,
        }
    }

    /// The §7.7 funnel.
    pub fn funnel(&self) -> &NotificationReport {
        match self {
            Source::Eager(ctx) => &ctx.funnel,
            Source::Streaming(sc) => &sc.funnel,
        }
    }

    /// Compiled-policy cache tallies.
    pub fn cache(&self) -> Option<&PolicyCacheStats> {
        match self {
            Source::Eager(ctx) => ctx.cache.as_ref(),
            Source::Streaming(sc) => sc.cache.as_ref(),
        }
    }

    /// Whether `domain` is in `set` (streaming: retained domains only).
    pub fn in_set(&self, domain: DomainId, set: SetFilter) -> bool {
        match self {
            Source::Eager(ctx) => ctx.in_set(domain, set),
            Source::Streaming(sc) => sc.in_set(domain, set),
        }
    }

    /// How many domains `set` holds, from the aggregates fold.
    pub fn set_size(&self, set: SetFilter) -> usize {
        self.aggregates().set_counts[set.index()]
    }

    /// Initially vulnerable domains restricted to `set` — always
    /// retained, in both modes.
    pub fn vulnerable_domains_in(&self, set: SetFilter) -> Vec<DomainId> {
        self.campaign()
            .vulnerable_domains
            .iter()
            .copied()
            .filter(|&d| self.in_set(d, set))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_runs_end_to_end_and_sets_are_consistent() {
        let ctx = Context::run(0.004, 7);
        let all = ctx.set_domains(SetFilter::All).len();
        let alexa = ctx.set_domains(SetFilter::AlexaTopList).len();
        let two_week = ctx.set_domains(SetFilter::TwoWeek).len();
        let providers = ctx.set_domains(SetFilter::TopProviders).len();
        assert_eq!(all, ctx.world.domains.len());
        assert!(alexa > two_week);
        assert_eq!(providers, 20);
        let top1000 = ctx.set_domains(SetFilter::Alexa1000).len();
        assert!(top1000 <= alexa);
        // Every vulnerable domain is in at least one reporting set.
        for &d in &ctx.campaign.vulnerable_domains {
            assert!(ctx.in_set(d, SetFilter::All));
        }
        assert!(ctx.funnel.sent > 0);
        assert_eq!(
            ctx.set_hosts(SetFilter::All).len(),
            ctx.world.hosts.len(),
            "every host serves some domain"
        );
    }
}
