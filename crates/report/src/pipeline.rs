//! One full reproduction run, shared by every exhibit builder.

use std::collections::BTreeSet;

use spfail_netsim::PolicyCacheStats;
use spfail_notify::{NotificationCampaign, NotificationRecord, NotificationReport, PixelLog};
use spfail_prober::{CampaignBuilder, CampaignData, HostClass, HostInitialResult};
use spfail_world::{DomainId, HostId, World, WorldConfig};

/// The domain groups the paper reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetFilter {
    /// Every domain in either set.
    All,
    /// The Alexa Top List.
    AlexaTopList,
    /// The Alexa Top 1000 subset.
    Alexa1000,
    /// The 2-Week MX set.
    TwoWeek,
    /// The Top Email Providers reference set.
    TopProviders,
}

impl SetFilter {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SetFilter::All => "All",
            SetFilter::AlexaTopList => "Alexa Top List",
            SetFilter::Alexa1000 => "Alexa 1000",
            SetFilter::TwoWeek => "2-Week MX",
            SetFilter::TopProviders => "Top Email Providers",
        }
    }
}

/// The results of one end-to-end run.
pub struct Context {
    /// The generated world.
    pub world: World,
    /// Measurement campaign results.
    pub campaign: CampaignData,
    /// Notification records.
    pub notifications: Vec<NotificationRecord>,
    /// The §7.7 funnel.
    pub funnel: NotificationReport,
    /// The tracking-pixel log.
    pub pixels: PixelLog,
    /// Compiled-policy cache tallies from the campaign run, `None` when
    /// the campaign ran without the cache (or was rebuilt from bare
    /// [`CampaignData`]). Every other exhibit is identical either way —
    /// the cache is measurement-transparent — so only the
    /// `cache_efficiency` exhibit reads this.
    pub cache: Option<PolicyCacheStats>,
}

impl Context {
    /// Run the whole reproduction at `scale` with `seed`.
    pub fn run(scale: f64, seed: u64) -> Context {
        let world = World::generate(WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        });
        // Drive the staged session explicitly — the report pipeline is
        // the reference consumer of the stage-by-stage API.
        let (campaign, cache) = {
            let mut session = CampaignBuilder::new().session(&world);
            session.initial_sweep();
            while session.advance_round().is_some() {}
            let run = session.finish();
            (run.data, run.cache)
        };
        let mut ctx = Context::from_campaign(world, campaign);
        ctx.cache = cache;
        ctx
    }

    /// Build the exhibit context from an already-measured campaign —
    /// e.g. one continued from a [`spfail_prober::Session`] checkpoint.
    /// `campaign` must have been measured against `world`.
    pub fn from_campaign(world: World, campaign: CampaignData) -> Context {
        let mut pixels = PixelLog::new();
        // The notification list is the *measured* vulnerable set — domains
        // hosted on addresses whose initial probe showed the fingerprint —
        // exactly as the paper built it.
        let (notifications, funnel) =
            NotificationCampaign::run(&world, &campaign.vulnerable_domains, &mut pixels);
        Context {
            world,
            campaign,
            notifications,
            funnel,
            pixels,
            cache: None,
        }
    }

    /// Whether `domain` is in `set`.
    pub fn in_set(&self, domain: DomainId, set: SetFilter) -> bool {
        let d = self.world.domain(domain);
        match set {
            SetFilter::All => true,
            SetFilter::AlexaTopList => d.in_alexa(),
            SetFilter::Alexa1000 => d.in_alexa_top(self.world.config.top1000_cutoff()),
            SetFilter::TwoWeek => d.in_two_week(),
            SetFilter::TopProviders => d.top_provider,
        }
    }

    /// All domains in `set`.
    pub fn set_domains(&self, set: SetFilter) -> Vec<DomainId> {
        (0..self.world.domains.len() as u32)
            .map(DomainId)
            .filter(|&d| self.in_set(d, set))
            .collect()
    }

    /// Unique hosts serving any domain of `set`.
    pub fn set_hosts(&self, set: SetFilter) -> Vec<HostId> {
        let mut hosts = BTreeSet::new();
        for d in self.set_domains(set) {
            hosts.extend(self.world.domain(d).hosts.iter().copied());
        }
        hosts.into_iter().collect()
    }

    /// The initial probe results for one host.
    pub fn initial(&self, host: HostId) -> &HostInitialResult {
        self.campaign
            .initial
            .results
            .get(&host)
            .expect("every host was probed in the initial sweep")
    }

    /// Table 3's outcome class for one host.
    pub fn host_class(&self, host: HostId) -> HostClass {
        self.initial(host).class()
    }

    /// Initially vulnerable domains restricted to `set`.
    pub fn vulnerable_domains_in(&self, set: SetFilter) -> Vec<DomainId> {
        self.campaign
            .vulnerable_domains
            .iter()
            .copied()
            .filter(|&d| self.in_set(d, set))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_runs_end_to_end_and_sets_are_consistent() {
        let ctx = Context::run(0.004, 7);
        let all = ctx.set_domains(SetFilter::All).len();
        let alexa = ctx.set_domains(SetFilter::AlexaTopList).len();
        let two_week = ctx.set_domains(SetFilter::TwoWeek).len();
        let providers = ctx.set_domains(SetFilter::TopProviders).len();
        assert_eq!(all, ctx.world.domains.len());
        assert!(alexa > two_week);
        assert_eq!(providers, 20);
        let top1000 = ctx.set_domains(SetFilter::Alexa1000).len();
        assert!(top1000 <= alexa);
        // Every vulnerable domain is in at least one reporting set.
        for &d in &ctx.campaign.vulnerable_domains {
            assert!(ctx.in_set(d, SetFilter::All));
        }
        assert!(ctx.funnel.sent > 0);
        assert_eq!(
            ctx.set_hosts(SetFilter::All).len(),
            ctx.world.hosts.len(),
            "every host serves some domain"
        );
    }
}
