//! Plain-text table rendering.

use std::fmt;

/// A rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; ragged rows are padded at render time.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let pad = width - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render as a LaTeX `tabular`, for dropping exhibits straight into a
    /// paper. The first column is left-aligned, the rest right-aligned;
    /// `%`, `&`, `#` and `_` are escaped.
    pub fn render_latex(&self, caption: &str, label: &str) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let escape = |cell: &str| {
            cell.replace('\\', "\\textbackslash{}")
                .replace('%', "\\%")
                .replace('&', "\\&")
                .replace('#', "\\#")
                .replace('_', "\\_")
        };
        let mut spec = String::from("l");
        spec.push_str(&"r".repeat(columns.saturating_sub(1)));
        let mut out = String::new();
        out.push_str("\\begin{table}\n  \\centering\n");
        out.push_str(&format!("  \\caption{{{}}}\n", escape(caption)));
        out.push_str(&format!("  \\label{{{label}}}\n"));
        out.push_str(&format!("  \\begin{{tabular}}{{{spec}}}\n    \\toprule\n"));
        let row_line = |cells: &[String]| {
            let mut padded: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            padded.resize(columns, String::new());
            format!("    {} \\\\\n", padded.join(" & "))
        };
        out.push_str(&row_line(&self.headers));
        out.push_str("    \\midrule\n");
        for row in &self.rows {
            out.push_str(&row_line(row));
        }
        out.push_str("    \\bottomrule\n  \\end{tabular}\n\\end{table}\n");
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// `"count (pct%)"` cell formatting, as the paper's tables use.
pub fn count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        return format!("{count} (-)");
    }
    let pct = 100.0 * count as f64 / total as f64;
    if pct >= 10.0 {
        format!("{count} ({pct:.0}%)")
    } else {
        format!("{count} ({pct:.1}%)")
    }
}

/// Plain percentage formatting.
pub fn pct(count: usize, total: usize) -> String {
    if total == 0 {
        return "-".to_string();
    }
    format!("{:.1}%", 100.0 * count as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["TLD", "Count"]);
        t.row(["com", "230801"]);
        t.row(["ru", "19844"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("TLD"));
        assert!(lines[2].ends_with("230801"));
        assert!(lines[3].ends_with("19844"));
        // Right-aligned numeric column: both numbers end at same offset.
        assert_eq!(lines[2].len(), lines[0].len().max(lines[2].len()));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(["A", "B", "C"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn latex_rendering_escapes_and_structures() {
        let mut t = Table::new(["TLD", "% Patched"]);
        t.row([".za", "79%"]);
        t.row(["a_b & c", "15%"]);
        let tex = t.render_latex("Patch rates", "tab:patch");
        assert!(tex.contains("\\begin{tabular}{lr}"));
        assert!(tex.contains("\\caption{Patch rates}"));
        assert!(tex.contains("\\label{tab:patch}"));
        assert!(tex.contains("79\\%"));
        assert!(tex.contains("a\\_b \\& c"));
        assert!(tex.contains("\\toprule"));
        assert!(tex.ends_with("\\end{table}\n"));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(count_pct(50, 100), "50 (50%)");
        assert_eq!(count_pct(5, 100), "5 (5.0%)");
        assert_eq!(count_pct(1, 0), "1 (-)");
        assert_eq!(pct(1, 8), "12.5%");
        assert_eq!(pct(1, 0), "-");
    }
}
