//! The report harness: regenerate every table and figure of the paper.
//!
//! * [`pipeline`] — run the whole reproduction once (world → initial
//!   sweep → longitudinal campaign → notification campaign) and keep the
//!   results in a [`pipeline::Context`] the exhibit builders share.
//! * [`table`] — plain-text table rendering.
//! * [`series`] — time-series containers and a text sparkline renderer.
//! * [`tables`] — Tables 1–7.
//! * [`resilience`] — fault-injection recall figure (not in the paper).
//! * [`trace_profile`] — structured-trace latency profile (not in the paper).
//! * [`cache`] — compiled-policy cache efficiency (not in the paper).
//! * [`figures`] — Figures 2–8 and the §7.7 notification funnel.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run -p spfail-report --release --bin experiments -- --scale 0.05
//! ```
//!
//! printing each exhibit and emitting machine-readable JSON alongside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod figures;
pub mod pipeline;
pub mod resilience;
pub mod series;
pub mod stats;
pub mod table;
pub mod tables;
pub mod trace_profile;

pub use pipeline::Context;
pub use table::Table;

use serde_json::Value;

/// One regenerated exhibit.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Identifier, e.g. `"table3"` or `"fig7"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// What the paper reported, for the paper-vs-measured record.
    pub paper_claim: &'static str,
    /// The rendered text (tables and/or series plots).
    pub rendered: String,
    /// Machine-readable contents.
    pub json: Value,
}

/// One entry of the exhibit registry: a stable identifier and the
/// builder that regenerates the exhibit from a pipeline run.
pub struct ExhibitEntry {
    /// Identifier, matching the built [`Exhibit::id`].
    pub id: &'static str,
    /// Build the exhibit from one pipeline run.
    pub build: fn(&Context) -> Exhibit,
}

/// The exhibit registry, in paper order. Single source of truth for
/// "every exhibit": [`all_exhibits`] walks it, and the experiments
/// binary's `--only` flag selects from it by id.
pub const EXHIBIT_REGISTRY: &[ExhibitEntry] = &[
    ExhibitEntry { id: "table1", build: tables::table1 },
    ExhibitEntry { id: "table2", build: tables::table2 },
    ExhibitEntry { id: "table3", build: tables::table3 },
    ExhibitEntry { id: "table4", build: tables::table4 },
    ExhibitEntry { id: "table5", build: tables::table5 },
    ExhibitEntry { id: "table6", build: |_| tables::table6() },
    ExhibitEntry { id: "table7", build: tables::table7 },
    ExhibitEntry { id: "fig2", build: figures::fig2 },
    ExhibitEntry { id: "fig3", build: figures::fig3 },
    ExhibitEntry { id: "fig4", build: figures::fig4 },
    ExhibitEntry { id: "fig5", build: figures::fig5 },
    ExhibitEntry { id: "fig6", build: figures::fig6 },
    ExhibitEntry { id: "fig7", build: figures::fig7 },
    ExhibitEntry { id: "fig8", build: figures::fig8 },
    ExhibitEntry { id: "funnel", build: figures::notification_funnel },
    ExhibitEntry { id: "attribution", build: figures::attribution },
    ExhibitEntry { id: "resilience", build: resilience::resilience },
    ExhibitEntry { id: "trace_profile", build: trace_profile::trace_profile },
    ExhibitEntry { id: "cache_efficiency", build: cache::cache_efficiency },
];

/// Look up a registry entry by exhibit id.
pub fn exhibit_by_id(id: &str) -> Option<&'static ExhibitEntry> {
    EXHIBIT_REGISTRY.iter().find(|e| e.id == id)
}

/// Build every exhibit from one pipeline run, in paper order.
pub fn all_exhibits(ctx: &Context) -> Vec<Exhibit> {
    EXHIBIT_REGISTRY.iter().map(|e| (e.build)(ctx)).collect()
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for entry in EXHIBIT_REGISTRY {
            assert!(seen.insert(entry.id), "duplicate exhibit id {}", entry.id);
        }
    }

    #[test]
    fn registry_ids_match_built_exhibits() {
        let ctx = testctx::shared();
        for entry in EXHIBIT_REGISTRY {
            assert_eq!((entry.build)(ctx).id, entry.id);
        }
        assert!(exhibit_by_id("fig7").is_some());
        assert!(exhibit_by_id("fig99").is_none());
    }
}

#[cfg(test)]
pub(crate) mod testctx {
    //! A single shared pipeline run for the exhibit tests: the campaign
    //! is deterministic, so every test can read the same context.
    use super::Context;
    use std::sync::OnceLock;

    static CTX: OnceLock<Context> = OnceLock::new();

    pub(crate) fn shared() -> &'static Context {
        // 0.025 ≈ 10.5K Alexa domains: large enough that per-set rates sit
        // within a few points of their calibration targets.
        CTX.get_or_init(|| Context::run(0.025, 11))
    }
}
