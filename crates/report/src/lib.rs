//! The report harness: regenerate every table and figure of the paper.
//!
//! * [`pipeline`] — run the whole reproduction once (world → initial
//!   sweep → longitudinal campaign → notification campaign) and keep the
//!   results in a [`pipeline::Context`] the exhibit builders share.
//! * [`table`] — plain-text table rendering.
//! * [`series`] — time-series containers and a text sparkline renderer.
//! * [`tables`] — Tables 1–7.
//! * [`resilience`] — fault-injection recall figure (not in the paper).
//! * [`trace_profile`] — structured-trace latency profile (not in the paper).
//! * [`figures`] — Figures 2–8 and the §7.7 notification funnel.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run -p spfail-report --release --bin experiments -- --scale 0.05
//! ```
//!
//! printing each exhibit and emitting machine-readable JSON alongside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod pipeline;
pub mod resilience;
pub mod series;
pub mod stats;
pub mod table;
pub mod tables;
pub mod trace_profile;

pub use pipeline::Context;
pub use table::Table;

use serde_json::Value;

/// One regenerated exhibit.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Identifier, e.g. `"table3"` or `"fig7"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// What the paper reported, for the paper-vs-measured record.
    pub paper_claim: &'static str,
    /// The rendered text (tables and/or series plots).
    pub rendered: String,
    /// Machine-readable contents.
    pub json: Value,
}

/// Build every exhibit from one pipeline run, in paper order.
pub fn all_exhibits(ctx: &Context) -> Vec<Exhibit> {
    vec![
        tables::table1(ctx),
        tables::table2(ctx),
        tables::table3(ctx),
        tables::table4(ctx),
        tables::table5(ctx),
        tables::table6(),
        tables::table7(ctx),
        figures::fig2(ctx),
        figures::fig3(ctx),
        figures::fig4(ctx),
        figures::fig5(ctx),
        figures::fig6(ctx),
        figures::fig7(ctx),
        figures::fig8(ctx),
        figures::notification_funnel(ctx),
        figures::attribution(ctx),
        resilience::resilience(ctx),
        trace_profile::trace_profile(ctx),
    ]
}

#[cfg(test)]
pub(crate) mod testctx {
    //! A single shared pipeline run for the exhibit tests: the campaign
    //! is deterministic, so every test can read the same context.
    use super::Context;
    use std::sync::OnceLock;

    static CTX: OnceLock<Context> = OnceLock::new();

    pub(crate) fn shared() -> &'static Context {
        // 0.025 ≈ 10.5K Alexa domains: large enough that per-set rates sit
        // within a few points of their calibration targets.
        CTX.get_or_init(|| Context::run(0.025, 11))
    }
}
