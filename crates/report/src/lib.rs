//! The report harness: regenerate every table and figure of the paper.
//!
//! * [`pipeline`] — run the whole reproduction once (world → initial
//!   sweep → longitudinal campaign → notification campaign) and keep the
//!   results in a [`pipeline::Context`] the exhibit builders share.
//! * [`table`] — plain-text table rendering.
//! * [`series`] — time-series containers and a text sparkline renderer.
//! * [`tables`] — Tables 1–7.
//! * [`resilience`] — fault-injection recall figure (not in the paper).
//! * [`trace_profile`] — structured-trace latency profile (not in the paper).
//! * [`cache`] — compiled-policy cache efficiency (not in the paper).
//! * [`figures`] — Figures 2–8 and the §7.7 notification funnel.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run -p spfail-report --release --bin experiments -- --scale 0.05
//! ```
//!
//! printing each exhibit and emitting machine-readable JSON alongside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod cache;
pub mod figures;
pub mod pipeline;
pub mod resilience;
pub mod series;
pub mod stats;
pub mod table;
pub mod tables;
pub mod trace_profile;

pub use aggregates::WorldAggregates;
pub use pipeline::{Context, Source, StreamContext};
pub use table::Table;

use serde_json::Value;

/// One regenerated exhibit.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Identifier, e.g. `"table3"` or `"fig7"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// What the paper reported, for the paper-vs-measured record.
    pub paper_claim: &'static str,
    /// The rendered text (tables and/or series plots).
    pub rendered: String,
    /// Machine-readable contents.
    pub json: Value,
}

/// One entry of the exhibit registry: a stable identifier and the
/// builder that regenerates the exhibit from a pipeline run.
pub struct ExhibitEntry {
    /// Identifier, matching the built [`Exhibit::id`].
    pub id: &'static str,
    /// Build the exhibit from one eager pipeline run.
    pub build: fn(&Context) -> Exhibit,
    /// Build the same exhibit from one streaming pipeline run. Both
    /// constructors dispatch to one shared implementation over
    /// [`pipeline::Source`], so a given seed and scale produce
    /// bit-for-bit identical exhibits either way.
    pub build_streaming: fn(&StreamContext) -> Exhibit,
}

/// The exhibit registry, in paper order. Single source of truth for
/// "every exhibit": [`all_exhibits`] walks it, and the experiments
/// binary's `--only` flag selects from it by id.
pub const EXHIBIT_REGISTRY: &[ExhibitEntry] = &[
    ExhibitEntry {
        id: "table1",
        build: tables::table1,
        build_streaming: tables::table1_streaming,
    },
    ExhibitEntry {
        id: "table2",
        build: tables::table2,
        build_streaming: tables::table2_streaming,
    },
    ExhibitEntry {
        id: "table3",
        build: tables::table3,
        build_streaming: tables::table3_streaming,
    },
    ExhibitEntry {
        id: "table4",
        build: tables::table4,
        build_streaming: tables::table4_streaming,
    },
    ExhibitEntry {
        id: "table5",
        build: tables::table5,
        build_streaming: tables::table5_streaming,
    },
    ExhibitEntry {
        id: "table6",
        build: |_| tables::table6(),
        build_streaming: |_| tables::table6(),
    },
    ExhibitEntry {
        id: "table7",
        build: tables::table7,
        build_streaming: tables::table7_streaming,
    },
    ExhibitEntry {
        id: "fig2",
        build: figures::fig2,
        build_streaming: figures::fig2_streaming,
    },
    ExhibitEntry {
        id: "fig3",
        build: figures::fig3,
        build_streaming: figures::fig3_streaming,
    },
    ExhibitEntry {
        id: "fig4",
        build: figures::fig4,
        build_streaming: figures::fig4_streaming,
    },
    ExhibitEntry {
        id: "fig5",
        build: figures::fig5,
        build_streaming: figures::fig5_streaming,
    },
    ExhibitEntry {
        id: "fig6",
        build: figures::fig6,
        build_streaming: figures::fig6_streaming,
    },
    ExhibitEntry {
        id: "fig7",
        build: figures::fig7,
        build_streaming: figures::fig7_streaming,
    },
    ExhibitEntry {
        id: "fig8",
        build: figures::fig8,
        build_streaming: figures::fig8_streaming,
    },
    ExhibitEntry {
        id: "funnel",
        build: figures::notification_funnel,
        build_streaming: figures::notification_funnel_streaming,
    },
    ExhibitEntry {
        id: "attribution",
        build: figures::attribution,
        build_streaming: figures::attribution_streaming,
    },
    ExhibitEntry {
        id: "resilience",
        build: resilience::resilience,
        build_streaming: resilience::resilience_streaming,
    },
    ExhibitEntry {
        id: "trace_profile",
        build: trace_profile::trace_profile,
        build_streaming: trace_profile::trace_profile_streaming,
    },
    ExhibitEntry {
        id: "cache_efficiency",
        build: cache::cache_efficiency,
        build_streaming: cache::cache_efficiency_streaming,
    },
];

/// Look up a registry entry by exhibit id.
pub fn exhibit_by_id(id: &str) -> Option<&'static ExhibitEntry> {
    EXHIBIT_REGISTRY.iter().find(|e| e.id == id)
}

/// Build every exhibit from one pipeline run, in paper order.
pub fn all_exhibits(ctx: &Context) -> Vec<Exhibit> {
    EXHIBIT_REGISTRY.iter().map(|e| (e.build)(ctx)).collect()
}

/// Build every exhibit from one *streaming* pipeline run, in paper
/// order — bit-for-bit identical to [`all_exhibits`] over the eager run
/// of the same seed and scale.
pub fn all_exhibits_streaming(sc: &StreamContext) -> Vec<Exhibit> {
    EXHIBIT_REGISTRY
        .iter()
        .map(|e| (e.build_streaming)(sc))
        .collect()
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for entry in EXHIBIT_REGISTRY {
            assert!(seen.insert(entry.id), "duplicate exhibit id {}", entry.id);
        }
    }

    #[test]
    fn registry_ids_match_built_exhibits() {
        let ctx = testctx::shared();
        for entry in EXHIBIT_REGISTRY {
            assert_eq!((entry.build)(ctx).id, entry.id);
        }
        assert!(exhibit_by_id("fig7").is_some());
        assert!(exhibit_by_id("fig99").is_none());
    }
}

#[cfg(test)]
pub(crate) mod testctx {
    //! A single shared pipeline run for the exhibit tests: the campaign
    //! is deterministic, so every test can read the same context.
    use super::Context;
    use std::sync::OnceLock;

    static CTX: OnceLock<Context> = OnceLock::new();

    pub(crate) fn shared() -> &'static Context {
        // 0.025 ≈ 10.5K Alexa domains: large enough that per-set rates sit
        // within a few points of their calibration targets.
        CTX.get_or_init(|| Context::run(0.025, 11))
    }
}
