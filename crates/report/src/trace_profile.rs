//! Where the simulated campaign time goes.
//!
//! The paper's campaign was budgeted around real-world latencies: DNS
//! round trips, SMTP conversations, greylist waits, and retry backoff
//! (§5, §6.1). This exhibit runs a small traced campaign under the
//! combined fault regime and renders the structured-trace profile — per
//! stack path counts, cumulative and self time, and the per-phase
//! whole-probe latency distribution — so the simulated cost model is a
//! first-class, regenerable artifact. Because sharded traces are
//! byte-identical to sequential ones (`tests/trace_equivalence.rs`),
//! this table is independent of how the campaign was parallelised.

use serde_json::json;
use spfail_netsim::{FaultPlan, FaultProfile, FlakyWindow, SimDuration};
use spfail_prober::{CampaignBuilder, RetryPolicy, TraceConfig};
use spfail_trace::{format_us, Profile};
use spfail_world::{World, WorldConfig};

use crate::pipeline::{Context, Source, StreamContext};
use crate::table::Table;
use crate::Exhibit;

/// Scale of the dedicated profiling world — small for the same reason
/// as [`crate::resilience`]: every `all_exhibits` caller pays for it.
const SCALE: f64 = 0.004;

/// A modest fault-plus-retry regime, so the profile exercises every
/// span kind: DNS resolves, SMTP sessions, fault stalls, greylist
/// waits, and retry backoff.
fn faults() -> FaultProfile {
    FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    }
}

/// Run the traced campaign and return its latency profile.
fn profile_campaign(seed: u64) -> Profile {
    let world = World::generate(WorldConfig {
        scale: SCALE,
        ..WorldConfig::small(seed)
    });
    let run = CampaignBuilder::new()
        .faults(faults())
        .retry(RetryPolicy::standard())
        .trace(TraceConfig::enabled())
        .run(&world);
    run.trace.expect("tracing was requested").profile()
}

/// The trace-profile exhibit: self/cumulative time per span path and
/// per-phase probe latency.
pub fn trace_profile(ctx: &Context) -> Exhibit {
    trace_profile_impl(&Source::Eager(ctx))
}

/// The trace profile from a streaming run.
pub fn trace_profile_streaming(sc: &StreamContext) -> Exhibit {
    trace_profile_impl(&Source::Streaming(sc))
}

fn trace_profile_impl(src: &Source) -> Exhibit {
    let profile = profile_campaign(src.config().seed);

    let mut paths = Table::new(["Stack path", "Count", "Total", "Self", "Mean"]);
    let mut path_rows = Vec::new();
    for (path, row) in profile.rows() {
        paths.row([
            path.to_string(),
            row.count.to_string(),
            format_us(row.total_us),
            format_us(row.self_us),
            format_us((row.hist.mean().unwrap_or(0.0)) as u64),
        ]);
        path_rows.push(json!({
            "path": path,
            "count": row.count,
            "total_us": row.total_us,
            "self_us": row.self_us,
        }));
    }

    let mut phases = Table::new(["Phase", "Probes", "Min", "Mean", "Max"]);
    let mut phase_rows = Vec::new();
    for (phase, hist) in profile.phases() {
        phases.row([
            phase.label(),
            hist.count().to_string(),
            format_us(hist.min().unwrap_or(0)),
            format_us(hist.mean().unwrap_or(0.0) as u64),
            format_us(hist.max().unwrap_or(0)),
        ]);
        phase_rows.push(json!({
            "phase": phase.label(),
            "probes": hist.count(),
            "min_us": hist.min(),
            "mean_us": hist.mean(),
            "max_us": hist.max(),
        }));
    }

    let rendered = format!("{}\n{}", paths.render(), phases.render());
    Exhibit {
        id: "trace_profile",
        title: "Campaign latency profile: simulated time per span path and phase",
        paper_claim: "probe pacing was dominated by protocol waits — DNS \
                      round trips, SMTP conversations, 8-minute greylist \
                      waits, and retry backoff (§5, §6.1)",
        rendered,
        json: json!({
            "scale": SCALE,
            "probes": profile.probe_count(),
            "paths": path_rows,
            "phases": phase_rows,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx;

    #[test]
    fn profile_covers_every_span_kind_and_phase() {
        let exhibit = trace_profile(testctx::shared());
        let paths: Vec<String> = exhibit.json["paths"]
            .as_array()
            .unwrap()
            .iter()
            .map(|row| row["path"].as_str().unwrap().to_string())
            .collect();
        assert!(paths.contains(&"probe".to_string()));
        assert!(paths.contains(&"probe;smtp_session".to_string()));
        assert!(paths.iter().any(|p| p.contains("dns_resolve")));
        assert!(paths.iter().any(|p| p.contains("retry_wait")));
        assert!(paths.iter().any(|p| p.contains("greylist_wait")));
        assert!(paths.iter().any(|p| p.contains("fault")));

        let phases: Vec<String> = exhibit.json["phases"]
            .as_array()
            .unwrap()
            .iter()
            .map(|row| row["phase"].as_str().unwrap().to_string())
            .collect();
        assert!(phases.first().is_some_and(|p| p == "initial"));
        assert!(phases.last().is_some_and(|p| p == "snapshot"));
        assert!(phases.iter().any(|p| p.starts_with("round-")));
        assert!(exhibit.json["probes"].as_u64().unwrap() > 0);
        assert!(exhibit.rendered.contains("probe;smtp_session"));
    }
}
