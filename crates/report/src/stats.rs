//! Small statistics helpers for the exhibits.
//!
//! Every headline rate in the paper (vulnerable share, patch rate, bounce
//! rate) is a binomial proportion estimated from a finite sample; at
//! reduced simulation scales the sampling error is material, so the
//! exhibits attach Wilson score intervals to their JSON output and the
//! tests assert against intervals rather than point estimates.

/// The Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` at the given z (1.96 ≈ 95%). Chosen over the
/// normal approximation because it behaves at the extremes (0, small n)
/// the small-scale runs actually hit.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denominator = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denominator).max(0.0),
        ((centre + margin) / denominator).min(1.0),
    )
}

/// The 95% Wilson interval.
pub fn wilson95(successes: usize, trials: usize) -> (f64, f64) {
    wilson_interval(successes, trials, 1.959_964)
}

/// Whether `target` is inside the 95% interval of an observed proportion —
/// the "is this consistent with the paper's rate" check.
pub fn consistent_with(successes: usize, trials: usize, target: f64) -> bool {
    let (low, high) = wilson95(successes, trials);
    (low..=high).contains(&target)
}

/// A JSON-ready summary of an observed proportion.
pub fn proportion_json(successes: usize, trials: usize) -> serde_json::Value {
    let (low, high) = wilson95(successes, trials);
    serde_json::json!({
        "successes": successes,
        "trials": trials,
        "rate": if trials > 0 { successes as f64 / trials as f64 } else { 0.0 },
        "ci95_low": low,
        "ci95_high": high,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // 50/100 at 95%: the Wilson interval is ~(0.404, 0.596).
        let (low, high) = wilson95(50, 100);
        assert!((low - 0.404).abs() < 0.005, "low {low}");
        assert!((high - 0.596).abs() < 0.005, "high {high}");
    }

    #[test]
    fn extremes_behave() {
        let (low, high) = wilson95(0, 20);
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.25, "high {high}");
        let (low, high) = wilson95(20, 20);
        assert!(low > 0.75 && low < 1.0, "low {low}");
        assert_eq!(high, 1.0);
        assert_eq!(wilson95(5, 0), (0.0, 1.0));
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let (l1, h1) = wilson95(16, 96);
        let (l2, h2) = wilson95(1600, 9600);
        assert!(h2 - l2 < h1 - l1);
        // Both intervals contain the true 1/6.
        assert!(consistent_with(16, 96, 1.0 / 6.0));
        assert!(consistent_with(1600, 9600, 1.0 / 6.0));
    }

    #[test]
    fn consistency_check_rejects_distant_targets() {
        assert!(!consistent_with(50, 1000, 0.5));
        assert!(consistent_with(500, 1000, 0.5));
    }

    #[test]
    fn json_summary_shape() {
        let v = proportion_json(30, 60);
        assert_eq!(v["successes"], 30);
        assert_eq!(v["rate"], 0.5);
        assert!(v["ci95_low"].as_f64().unwrap() < 0.5);
        assert!(v["ci95_high"].as_f64().unwrap() > 0.5);
    }
}
