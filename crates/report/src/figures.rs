//! Figures 2–8 and the notification funnel.
//!
//! Every builder is written against [`Source`]: the longitudinal
//! figures only read the campaign's round data plus retained domains
//! and tracked hosts, all of which the streaming pipeline keeps, so the
//! eager and streaming exhibits share one implementation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde_json::{json, Value};
use spfail_prober::{RoundStatus, SnapshotStatus};
use spfail_world::{geo, DomainId, HostId, Timeline};

use crate::pipeline::{Context, SetFilter, Source, StreamContext};
use crate::series::{render_chart, Series};
use crate::table::{count_pct, pct, Table};
use crate::Exhibit;

/// Precomputed longitudinal lookups shared by the time-series figures.
struct View<'a> {
    src: &'a Source<'a>,
    tracked: BTreeSet<HostId>,
    first_patched: BTreeMap<HostId, u16>,
    last_vulnerable: BTreeMap<HostId, u16>,
}

impl<'a> View<'a> {
    fn new(src: &'a Source<'a>) -> View<'a> {
        let campaign = src.campaign();
        let tracked: BTreeSet<HostId> = campaign.tracked.iter().copied().collect();
        let mut first_patched = BTreeMap::new();
        let mut last_vulnerable = BTreeMap::new();
        for (day, statuses) in &campaign.rounds {
            let mut by_host: Vec<(HostId, RoundStatus)> =
                statuses.iter().map(|(&host, &status)| (host, status)).collect();
            by_host.sort_unstable_by_key(|(host, _)| *host);
            for (host, status) in by_host {
                match status {
                    RoundStatus::Patched => {
                        first_patched.entry(host).or_insert(*day);
                    }
                    RoundStatus::Vulnerable => {
                        last_vulnerable.insert(host, *day);
                    }
                    RoundStatus::Inconclusive => {}
                }
            }
        }
        View {
            src,
            tracked,
            first_patched,
            last_vulnerable,
        }
    }

    /// A host's inferred status at `day` given that round's direct
    /// measurements.
    fn host_status(
        &self,
        host: HostId,
        day: u16,
        direct: &HashMap<HostId, RoundStatus>,
    ) -> RoundStatus {
        match direct.get(&host) {
            Some(&RoundStatus::Vulnerable) => return RoundStatus::Vulnerable,
            Some(&RoundStatus::Patched) => return RoundStatus::Patched,
            _ => {}
        }
        if self.last_vulnerable.get(&host).is_some_and(|&d| d >= day) {
            return RoundStatus::Vulnerable;
        }
        if self.first_patched.get(&host).is_some_and(|&d| d <= day) {
            return RoundStatus::Patched;
        }
        RoundStatus::Inconclusive
    }

    /// `(directly_measured, status)` for one domain at one round.
    fn domain_state(
        &self,
        domain: DomainId,
        day: u16,
        direct: &HashMap<HostId, RoundStatus>,
    ) -> (bool, RoundStatus) {
        let hosts: Vec<HostId> = self
            .src
            .domain(domain)
            .hosts
            .iter()
            .copied()
            .filter(|h| self.tracked.contains(h))
            .collect();
        if hosts.is_empty() {
            return (false, RoundStatus::Inconclusive);
        }
        let all_direct = hosts.iter().all(|h| {
            matches!(
                direct.get(h),
                Some(RoundStatus::Vulnerable) | Some(RoundStatus::Patched)
            )
        });
        let mut all_patched = true;
        let mut any_vulnerable = false;
        for &host in &hosts {
            match self.host_status(host, day, direct) {
                RoundStatus::Vulnerable => any_vulnerable = true,
                RoundStatus::Patched => {}
                RoundStatus::Inconclusive => all_patched = false,
            }
        }
        let status = if any_vulnerable {
            RoundStatus::Vulnerable
        } else if all_patched {
            RoundStatus::Patched
        } else {
            RoundStatus::Inconclusive
        };
        (all_direct, status)
    }
}

/// Figure 2: final distribution of initially vulnerable domains.
pub fn fig2(ctx: &Context) -> Exhibit {
    fig2_impl(&Source::Eager(ctx))
}

/// Figure 2 from a streaming run.
pub fn fig2_streaming(sc: &StreamContext) -> Exhibit {
    fig2_impl(&Source::Streaming(sc))
}

fn fig2_impl(src: &Source) -> Exhibit {
    let groups = [
        SetFilter::All,
        SetFilter::AlexaTopList,
        SetFilter::Alexa1000,
        SetFilter::TwoWeek,
    ];
    let mut table = Table::new(["Group", "Init. vulnerable", "Patched", "Vulnerable", "Unknown"]);
    let mut data = serde_json::Map::new();
    for group in groups {
        let domains = src.vulnerable_domains_in(group);
        let total = domains.len();
        let mut patched = 0;
        let mut vulnerable = 0;
        let mut unknown = 0;
        for d in &domains {
            match src.campaign().snapshot.get(d) {
                Some(SnapshotStatus::Patched) => patched += 1,
                Some(SnapshotStatus::Vulnerable) => vulnerable += 1,
                _ => unknown += 1,
            }
        }
        table.row([
            group.label().to_string(),
            total.to_string(),
            count_pct(patched, total),
            count_pct(vulnerable, total),
            count_pct(unknown, total),
        ]);
        data.insert(
            group.label().to_string(),
            json!({
                "total": total,
                "patched": patched,
                "vulnerable": vulnerable,
                "unknown": unknown,
                "patched_ci95": crate::stats::proportion_json(patched, total),
            }),
        );
    }
    Exhibit {
        id: "fig2",
        title: "Figure 2: Final (Feb 2022) status of initially vulnerable domains",
        paper_claim: "~15% of all initially vulnerable domains patched by Feb 2022; \
                      Alexa Top 1000 patched least (<10%); 2-Week MX has the most \
                      inconclusive/unknown domains",
        rendered: table.render(),
        json: Value::Object(data),
    }
}

/// Figure 3: geographic distribution of vulnerable and patched hosts.
pub fn fig3(ctx: &Context) -> Exhibit {
    fig3_impl(&Source::Eager(ctx))
}

/// Figure 3 from a streaming run.
pub fn fig3_streaming(sc: &StreamContext) -> Exhibit {
    fig3_impl(&Source::Streaming(sc))
}

fn fig3_impl(src: &Source) -> Exhibit {
    let view = View::new(src);
    #[derive(Default)]
    struct Bucket {
        vulnerable: usize,
        patched: usize,
        countries: BTreeMap<&'static str, usize>,
    }
    let mut buckets: BTreeMap<(i32, i32), Bucket> = BTreeMap::new();
    for &host in &src.campaign().tracked {
        let record = src.host(host);
        let cell = geo::bucket(&record.geo, 15.0);
        let bucket = buckets.entry(cell).or_default();
        bucket.vulnerable += 1;
        *bucket.countries.entry(record.geo.country).or_default() += 1;
        if view.first_patched.contains_key(&host) {
            bucket.patched += 1;
        }
    }
    let mut sorted: Vec<(&(i32, i32), &Bucket)> = buckets.iter().collect();
    sorted.sort_by_key(|(_, b)| std::cmp::Reverse(b.vulnerable));
    let mut table = Table::new(["Cell (lat,lon)", "Main country", "Vulnerable", "% Patched"]);
    for (cell, bucket) in sorted.iter().take(14) {
        let country = bucket
            .countries
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(c, _)| *c)
            .unwrap_or("-");
        table.row([
            format!("({}, {})", cell.0 * 15, cell.1 * 15),
            country.to_string(),
            bucket.vulnerable.to_string(),
            pct(bucket.patched, bucket.vulnerable),
        ]);
    }
    Exhibit {
        id: "fig3",
        title: "Figure 3: Geographic distribution of vulnerable (a) and patched (b) hosts",
        paper_claim: "vulnerable servers across all populous regions, concentrated \
                      in Europe; high patch fractions only in small cells plus the \
                      South-Africa outlier; near-zero patching in China/Taiwan, \
                      Russia, Central/South America",
        rendered: table.render(),
        json: json!(buckets
            .iter()
            .map(|(cell, b)| json!({
                "lat_cell": cell.0,
                "lon_cell": cell.1,
                "vulnerable": b.vulnerable,
                "patched": b.patched,
            }))
            .collect::<Vec<_>>()),
    }
}

/// Figure 4: vulnerable/patched domains by site-ranking bucket.
pub fn fig4(ctx: &Context) -> Exhibit {
    fig4_impl(&Source::Eager(ctx))
}

/// Figure 4 from a streaming run.
pub fn fig4_streaming(sc: &StreamContext) -> Exhibit {
    fig4_impl(&Source::Streaming(sc))
}

fn fig4_impl(src: &Source) -> Exhibit {
    let build = |set: SetFilter, rank_of: &dyn Fn(DomainId) -> Option<u32>, total_ranks: usize| {
        let mut vulnerable = vec![0usize; 20];
        let mut patched = vec![0usize; 20];
        for &d in &src.vulnerable_domains_in(set) {
            let Some(rank) = rank_of(d) else { continue };
            let bucket =
                (((rank as usize - 1) * 20) / total_ranks.max(1)).min(19);
            vulnerable[bucket] += 1;
            if src.campaign().snapshot.get(&d) == Some(&SnapshotStatus::Patched) {
                patched[bucket] += 1;
            }
        }
        (vulnerable, patched)
    };
    let alexa_total = src.set_size(SetFilter::AlexaTopList);
    let (alexa_vulnerable, alexa_patched) = build(
        SetFilter::AlexaTopList,
        &|d| src.domain(d).alexa_rank,
        alexa_total,
    );
    let two_week_total = src.set_size(SetFilter::TwoWeek);
    let (tw_vulnerable, tw_patched) = build(
        SetFilter::TwoWeek,
        &|d| src.domain(d).two_week_rank,
        two_week_total,
    );
    let mut table = Table::new([
        "Rank bucket",
        "Alexa vuln",
        "Alexa patched",
        "2-Week vuln",
        "2-Week patched",
    ]);
    for i in 0..20 {
        table.row([
            format!("{:>2} ({}–{}%)", i + 1, i * 5, (i + 1) * 5),
            alexa_vulnerable[i].to_string(),
            alexa_patched[i].to_string(),
            tw_vulnerable[i].to_string(),
            tw_patched[i].to_string(),
        ]);
    }
    let top5: usize = alexa_vulnerable[..5].iter().sum();
    let bottom5: usize = alexa_vulnerable[15..].iter().sum();
    let note = format!(
        "Alexa: bottom-quarter buckets hold {bottom5} vulnerable domains vs \
         {top5} in the top quarter (paper: bottom ranks ≈ 2x top ranks).\n"
    );
    Exhibit {
        id: "fig4",
        title: "Figure 4: Vulnerable/patched domains by site ranking (20 buckets)",
        paper_claim: "high-ranked domains have fewer vulnerable servers — bottom \
                      20K Alexa domains ≈ 2x the top 20K; patching slightly higher \
                      at high ranks, never above 40% anywhere",
        rendered: format!("{}{note}", table.render()),
        json: json!({
            "alexa": {"vulnerable": alexa_vulnerable, "patched": alexa_patched},
            "two_week": {"vulnerable": tw_vulnerable, "patched": tw_patched},
        }),
    }
}

/// Shared builder for the Figure 5/8 conclusiveness series.
fn conclusiveness(src: &Source, domains: &[DomainId]) -> (Series, Series, Vec<Value>) {
    let view = View::new(src);
    let mut measured = Series::new("successful measurements");
    let mut with_inferred = Series::new("incl. inferred");
    let mut json_rows = Vec::new();
    for (day, direct) in &src.campaign().rounds {
        let mut direct_count = 0usize;
        let mut inferred_count = 0usize;
        for &d in domains {
            let (is_direct, status) = view.domain_state(d, *day, direct);
            if is_direct {
                direct_count += 1;
            } else if status != RoundStatus::Inconclusive {
                inferred_count += 1;
            }
        }
        measured.push(*day, direct_count as f64);
        with_inferred.push(*day, (direct_count + inferred_count) as f64);
        json_rows.push(json!({
            "day": day,
            "date": Timeline::date_label(*day),
            "measured": direct_count,
            "inferred": inferred_count,
            "unknown": domains.len() - direct_count - inferred_count,
        }));
    }
    (measured, with_inferred, json_rows)
}

/// Figure 5: conclusive vulnerability results over time.
pub fn fig5(ctx: &Context) -> Exhibit {
    fig5_impl(&Source::Eager(ctx))
}

/// Figure 5 from a streaming run.
pub fn fig5_streaming(sc: &StreamContext) -> Exhibit {
    fig5_impl(&Source::Streaming(sc))
}

fn fig5_impl(src: &Source) -> Exhibit {
    let domains = src.campaign().vulnerable_domains.clone();
    let (measured, with_inferred, json_rows) = conclusiveness(src, &domains);
    let rendered = render_chart(
        &format!(
            "Conclusive measurements over time ({} initially vulnerable domains \
             on {} addresses)",
            domains.len(),
            src.campaign().tracked.len()
        ),
        &[measured, with_inferred],
        " domains",
    );
    Exhibit {
        id: "fig5",
        title: "Figure 5: Conclusive vulnerability results over time",
        paper_claim: "successful measurements fluctuate early and stabilise by \
                      late November; the measured+inferred band sits well above \
                      raw measurements; the gap (blacklisting, moved MTAs) grows \
                      over time",
        rendered,
        json: json!(json_rows),
    }
}

/// Shared builder for the Figure 6/7 vulnerability-rate series.
fn vulnerability_rates(src: &Source, window1_only: bool) -> (Vec<Series>, Vec<Value>) {
    let view = View::new(src);
    let sets = [SetFilter::AlexaTopList, SetFilter::Alexa1000, SetFilter::TwoWeek];
    let mut all_series: Vec<Series> = sets.iter().map(|s| Series::new(s.label())).collect();
    let mut json_rows = Vec::new();
    let domains_per_set: Vec<Vec<DomainId>> = sets
        .iter()
        .map(|&s| src.vulnerable_domains_in(s))
        .collect();
    for (day, direct) in &src.campaign().rounds {
        if window1_only && *day > Timeline::WINDOW1_END {
            break;
        }
        let mut row = serde_json::Map::new();
        row.insert("day".into(), json!(day));
        row.insert("date".into(), json!(Timeline::date_label(*day)));
        for (i, set) in sets.iter().enumerate() {
            let mut vulnerable = 0usize;
            let mut known = 0usize;
            for &d in &domains_per_set[i] {
                match view.domain_state(d, *day, direct).1 {
                    RoundStatus::Vulnerable => {
                        vulnerable += 1;
                        known += 1;
                    }
                    RoundStatus::Patched => known += 1,
                    RoundStatus::Inconclusive => {}
                }
            }
            // When a group becomes wholly unmeasurable (e.g. the Top 1000
            // after blacklisting) it drops out of the "known" pool; the
            // line carries its last value rather than plunging to zero.
            let rate = if known > 0 {
                100.0 * vulnerable as f64 / known as f64
            } else {
                all_series[i].last().unwrap_or(100.0)
            };
            all_series[i].push(*day, rate);
            row.insert(set.label().replace(' ', "_").to_lowercase(), json!(rate));
        }
        json_rows.push(Value::Object(row));
    }
    (all_series, json_rows)
}

/// Figure 6: vulnerability rates during the first measurement window.
pub fn fig6(ctx: &Context) -> Exhibit {
    fig6_impl(&Source::Eager(ctx))
}

/// Figure 6 from a streaming run.
pub fn fig6_streaming(sc: &StreamContext) -> Exhibit {
    fig6_impl(&Source::Streaming(sc))
}

fn fig6_impl(src: &Source) -> Exhibit {
    let (series, json_rows) = vulnerability_rates(src, true);
    Exhibit {
        id: "fig6",
        title: "Figure 6: Vulnerability rate per domain list, first window",
        paper_claim: "during window 1, ~10% of 2-Week MX and ~4% of Alexa Top List \
                      vulnerable domains start validating safely — mostly before \
                      the private notification (proactive package tracking)",
        rendered: render_chart(
            "Vulnerable share of known-status domains, window 1 (%)",
            &series,
            "%",
        ),
        json: json!(json_rows),
    }
}

/// Figure 7: vulnerability rates over the full measurement period.
pub fn fig7(ctx: &Context) -> Exhibit {
    fig7_impl(&Source::Eager(ctx))
}

/// Figure 7 from a streaming run.
pub fn fig7_streaming(sc: &StreamContext) -> Exhibit {
    fig7_impl(&Source::Streaming(sc))
}

fn fig7_impl(src: &Source) -> Exhibit {
    let (series, json_rows) = vulnerability_rates(src, false);
    let finals: Vec<String> = series
        .iter()
        .map(|s| format!("{}: {:.1}%", s.label, s.last().unwrap_or(0.0)))
        .collect();
    Exhibit {
        id: "fig7",
        title: "Figure 7: Vulnerability rate per domain list, full period",
        paper_claim: "a visible drop right after the public disclosure (Debian \
                      patched the next day), strongest for the Alexa Top List; \
                      just over 80% of inferable domains still vulnerable at the \
                      end",
        rendered: format!(
            "{}  final: {}\n",
            render_chart(
                "Vulnerable share of known-status domains, full period (%)",
                &series,
                "%",
            ),
            finals.join(", ")
        ),
        json: json!(json_rows),
    }
}

/// Figure 8: conclusive results over time, Alexa Top 1000 only.
pub fn fig8(ctx: &Context) -> Exhibit {
    fig8_impl(&Source::Eager(ctx))
}

/// Figure 8 from a streaming run.
pub fn fig8_streaming(sc: &StreamContext) -> Exhibit {
    fig8_impl(&Source::Streaming(sc))
}

fn fig8_impl(src: &Source) -> Exhibit {
    let domains = src.vulnerable_domains_in(SetFilter::Alexa1000);
    let (measured, with_inferred, json_rows) = conclusiveness(src, &domains);
    Exhibit {
        id: "fig8",
        title: "Figure 8: Conclusive results over time, Alexa Top 1000",
        paper_claim: "28 vulnerable Top-1000 domains (87 servers); conclusive \
                      results dry up around mid-November (blacklisting); only the \
                      re-resolved February snapshot recovers them and shows a \
                      handful patched",
        rendered: render_chart(
            &format!(
                "Alexa Top 1000: {} initially vulnerable domains",
                domains.len()
            ),
            &[measured, with_inferred],
            " domains",
        ),
        json: json!(json_rows),
    }
}

/// Extension (§7.8 future work): patch-cause attribution.
///
/// The paper could only *correlate* patch timing with disclosure events;
/// the simulation knows each host's ground-truth cause, so this exhibit
/// reports how well the timing-window heuristic recovers it — exactly
/// the "more comprehensive analysis of package manager responses" the
/// paper proposes as future work.
pub fn attribution(ctx: &Context) -> Exhibit {
    attribution_impl(&Source::Eager(ctx))
}

/// Attribution from a streaming run.
pub fn attribution_streaming(sc: &StreamContext) -> Exhibit {
    attribution_impl(&Source::Streaming(sc))
}

fn attribution_impl(src: &Source) -> Exhibit {
    use spfail_world::PatchCause;
    let view = View::new(src);
    // Timing-window heuristic: classify each observed patch by when it
    // was first seen.
    let window_of = |day: u16| {
        if day <= Timeline::PRIVATE_NOTIFICATION {
            "window1-proactive"
        } else if day <= Timeline::PUBLIC_DISCLOSURE {
            "between-disclosures"
        } else {
            "post-disclosure"
        }
    };
    let mut rows: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    let mut attributed = 0usize;
    let mut correct = 0usize;
    for (&host, &first_day) in &view.first_patched {
        let truth = src.host(host).profile.patch_cause;
        let truth_label = match truth {
            Some(PatchCause::AutoUpdate(_)) => "auto-update",
            Some(PatchCause::ProactiveAdmin) => "proactive-admin",
            Some(PatchCause::PrivateNotification) => "private-notification",
            Some(PatchCause::PublicDisclosure) => "public-disclosure",
            None => "none",
        };
        let inferred = window_of(first_day);
        *rows.entry((truth_label, inferred)).or_default() += 1;
        attributed += 1;
        // The heuristic is "correct" when the window matches the cause's
        // natural window.
        let matches = matches!(
            (truth, inferred),
            (Some(PatchCause::ProactiveAdmin), "window1-proactive")
                | (Some(PatchCause::PrivateNotification), "between-disclosures")
                | (Some(PatchCause::PublicDisclosure), "post-disclosure")
                // Auto-updates land wherever their distro shipped.
                | (Some(PatchCause::AutoUpdate(_)), _)
        );
        if matches {
            correct += 1;
        }
    }
    let mut table = Table::new(["Ground-truth cause", "Observed window", "Hosts"]);
    for ((truth, inferred), count) in &rows {
        table.row([truth.to_string(), inferred.to_string(), count.to_string()]);
    }
    let accuracy = if attributed > 0 {
        format!(
            "timing-window heuristic consistent with ground truth for \
             {correct}/{attributed} observed patches ({:.0}%)\n",
            100.0 * correct as f64 / attributed as f64
        )
    } else {
        "no patches observed at this scale\n".to_string()
    };
    Exhibit {
        id: "attribution",
        title: "Extension: patch-cause attribution vs. observed timing windows",
        paper_claim: "(future work in §7.8) the paper infers causes from timing \
                      alone; the simulation exposes ground truth, quantifying how \
                      much distro auto-updates drive both patching waves",
        rendered: format!("{}{accuracy}", table.render()),
        json: json!({
            "cells": rows.iter().map(|((t, i), c)| json!({
                "truth": t, "window": i, "hosts": c
            })).collect::<Vec<_>>(),
            "attributed": attributed,
            "consistent": correct,
        }),
    }
}

/// §7.7: the notification funnel.
pub fn notification_funnel(ctx: &Context) -> Exhibit {
    notification_funnel_impl(&Source::Eager(ctx))
}

/// The funnel from a streaming run.
pub fn notification_funnel_streaming(sc: &StreamContext) -> Exhibit {
    notification_funnel_impl(&Source::Streaming(sc))
}

fn notification_funnel_impl(src: &Source) -> Exhibit {
    let f = src.funnel();
    let delivered = f.sent - f.bounced;
    let mut table = Table::new(["Stage", "Count", "Rate", "Paper"]);
    table.row([
        "Notification emails sent".to_string(),
        f.sent.to_string(),
        "-".to_string(),
        "6,488".to_string(),
    ]);
    table.row([
        "Returned undelivered".to_string(),
        f.bounced.to_string(),
        pct(f.bounced, f.sent),
        "2,054 (31.6%)".to_string(),
    ]);
    table.row([
        "Opened (tracking image)".to_string(),
        f.opened.to_string(),
        pct(f.opened, delivered.max(1)),
        "512 (12%)".to_string(),
    ]);
    table.row([
        "Opened & eventually patched".to_string(),
        f.opened_then_patched.to_string(),
        pct(f.opened_then_patched, f.opened.max(1)),
        "177".to_string(),
    ]);
    table.row([
        "Patched between disclosures".to_string(),
        f.patched_between_disclosures.to_string(),
        pct(f.patched_between_disclosures, f.opened.max(1)),
        "9 (<1%)".to_string(),
    ]);
    table.row([
        "Unreached yet patched in window".to_string(),
        f.unreached_patched_between.to_string(),
        pct(f.unreached_patched_between, f.bounced.max(1)),
        "37 (2%)".to_string(),
    ]);
    Exhibit {
        id: "funnel",
        title: "§7.7: Response to private notification",
        paper_claim: "private notification is marginal: 12% open rate, 9 domains \
                      patched between private and public disclosure",
        rendered: table.render(),
        json: json!({
            "sent": f.sent,
            "bounced": f.bounced,
            "opened": f.opened,
            "opened_then_patched": f.opened_then_patched,
            "patched_between_disclosures": f.patched_between_disclosures,
            "unreached_patched_between": f.unreached_patched_between,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> &'static Context {
        crate::testctx::shared()
    }

    #[test]
    fn fig2_groups_partition_sensibly() {
        let c = ctx();
        let e = fig2(c);
        let all = &e.json["All"];
        let total = all["total"].as_u64().expect("n");
        assert_eq!(
            total,
            all["patched"].as_u64().expect("n")
                + all["vulnerable"].as_u64().expect("n")
                + all["unknown"].as_u64().expect("n")
        );
        // ~80% of inferable domains stay vulnerable: at least vulnerable >
        // patched by a wide margin.
        assert!(all["vulnerable"].as_u64().expect("n") > 2 * all["patched"].as_u64().expect("n"));
    }

    #[test]
    fn fig3_has_geographic_spread() {
        let e = fig3(ctx());
        let buckets = e.json.as_array().expect("array");
        assert!(buckets.len() >= 5, "hosts spread across ≥5 geo cells");
    }

    #[test]
    fn fig4_rank_gradient_shows() {
        let e = fig4(ctx());
        let vulnerable = e.json["alexa"]["vulnerable"]
            .as_array()
            .expect("array")
            .iter()
            .map(|v| v.as_u64().expect("count"))
            .collect::<Vec<u64>>();
        let top: u64 = vulnerable[..10].iter().sum();
        let bottom: u64 = vulnerable[10..].iter().sum();
        assert!(
            bottom > top,
            "lower-ranked half must hold more vulnerable domains ({bottom} vs {top})"
        );
    }

    #[test]
    fn fig5_series_cover_every_round() {
        let c = ctx();
        let e = fig5(c);
        assert_eq!(
            e.json.as_array().expect("array").len(),
            c.campaign.rounds.len()
        );
    }

    #[test]
    fn fig7_ends_mostly_vulnerable_with_disclosure_drop() {
        let c = ctx();
        let e = fig7(c);
        let rows = e.json.as_array().expect("array");
        let last = rows.last().expect("rows");
        let final_rate = last["alexa_top_list"].as_f64().expect("rate");
        assert!(final_rate > 60.0, "most domains stay vulnerable: {final_rate}");
        // The rate must drop across the disclosure.
        let before = rows
            .iter()
            .rfind(|r| r["day"].as_u64().expect("day") <= 96)
            .expect("window1 row")["alexa_top_list"]
            .as_f64()
            .expect("rate");
        assert!(
            final_rate < before,
            "post-disclosure rate {final_rate} must be below pre-disclosure {before}"
        );
    }

    #[test]
    fn fig6_is_a_prefix_of_fig7() {
        let c = ctx();
        let f6 = fig6(c);
        let f7 = fig7(c);
        let rows6 = f6.json.as_array().expect("array");
        let rows7 = f7.json.as_array().expect("array");
        assert!(rows6.len() < rows7.len());
        assert_eq!(rows6[0], rows7[0]);
    }

    #[test]
    fn fig8_top1000_dries_up() {
        let c = ctx();
        let e = fig8(c);
        let rows = e.json.as_array().expect("array");
        if rows.iter().all(|r| r["measured"].as_u64() == Some(0)) {
            return; // tiny scale may have no top-1000 vulnerable domains
        }
        let first_measured = rows[0]["measured"].as_u64().expect("n");
        let late = rows
            .iter()
            .find(|r| r["day"].as_u64().expect("day") >= 96)
            .expect("window 2 rows")["measured"]
            .as_u64()
            .expect("n");
        assert!(
            late <= first_measured,
            "conclusive Top-1000 measurements must not grow after blacklisting"
        );
    }

    #[test]
    fn funnel_is_internally_consistent() {
        let c = ctx();
        let e = notification_funnel(c);
        let sent = e.json["sent"].as_u64().expect("n");
        let bounced = e.json["bounced"].as_u64().expect("n");
        let opened = e.json["opened"].as_u64().expect("n");
        assert!(bounced <= sent);
        assert!(opened <= sent - bounced);
        assert!(e.json["patched_between_disclosures"].as_u64().expect("n") <= opened);
    }
}
