//! How much evaluation work the compiled-policy cache answered.
//!
//! The measurement campaign probes every host with unique sender
//! domains (paper §5.1), yet the *policies* those probes exercise are
//! overwhelmingly shared: one measurement-zone template and a handful
//! of provider records cover millions of evaluations. The prober's
//! compiled-policy cache (see `spfail_spf::compile`) exploits that —
//! each shard interns compiled policies by canonical record text and
//! replays recorded evaluation scripts — without perturbing a single
//! observable: query logs, simulated latency, the ethics budget, and
//! traces are bit-for-bit identical cache on or off
//! (`tests/policy_cache.rs`). This exhibit reports what that bought.

use serde_json::json;

use crate::pipeline::{Context, Source, StreamContext};
use crate::table::Table;
use crate::Exhibit;

/// The cache-efficiency exhibit: hit/miss/interned tallies of the
/// pipeline's own campaign run.
pub fn cache_efficiency(ctx: &Context) -> Exhibit {
    cache_efficiency_impl(&Source::Eager(ctx))
}

/// Cache efficiency from a streaming run.
pub fn cache_efficiency_streaming(sc: &StreamContext) -> Exhibit {
    cache_efficiency_impl(&Source::Streaming(sc))
}

fn cache_efficiency_impl(src: &Source) -> Exhibit {
    let mut table = Table::new(["Counter", "Value"]);
    let json = match src.cache() {
        Some(stats) => {
            let total = stats.hits + stats.misses;
            let hit_rate = stats.hit_rate().unwrap_or(0.0);
            table.row(["Evaluations answered from cache".to_string(), stats.hits.to_string()]);
            table.row(["Evaluations run live".to_string(), stats.misses.to_string()]);
            table.row(["Hit rate".to_string(), format!("{:.1}%", 100.0 * hit_rate)]);
            table.row(["Distinct policies interned".to_string(), stats.interned.to_string()]);
            json!({
                "enabled": true,
                "hits": stats.hits,
                "misses": stats.misses,
                "total": total,
                "hit_rate": hit_rate,
                "interned": stats.interned,
            })
        }
        None => {
            table.row(["Policy cache", "disabled"]);
            json!({ "enabled": false })
        }
    };
    Exhibit {
        id: "cache_efficiency",
        title: "Compiled-policy cache efficiency (measurement-transparent)",
        paper_claim: "not in the paper: the probes' unique sender domains \
                      defeat DNS caching by design (§5.1), but the SPF \
                      policies they exercise are shared — the simulator \
                      memoizes those without changing any measurement",
        rendered: table.render(),
        json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx;

    #[test]
    fn cache_exhibit_reports_a_warm_cache() {
        let exhibit = cache_efficiency(testctx::shared());
        assert_eq!(exhibit.id, "cache_efficiency");
        assert_eq!(exhibit.json["enabled"], json!(true));
        // The pipeline's campaign probes thousands of hosts against a
        // handful of distinct policies: the cache must be doing real
        // work, not idling.
        assert!(exhibit.json["hits"].as_u64().unwrap() > 0, "cache never hit");
        assert!(exhibit.json["interned"].as_u64().unwrap() >= 1);
        assert!(exhibit.json["hit_rate"].as_f64().unwrap() > 0.0);
        assert!(exhibit.rendered.contains("Hit rate"));
    }

    #[test]
    fn cache_exhibit_degrades_when_disabled() {
        // A context rebuilt from bare campaign data (e.g. a checkpoint
        // continuation) carries no cache tallies.
        let mut ctx = Context::run(0.004, 7);
        ctx.cache = None;
        let exhibit = cache_efficiency(&ctx);
        assert_eq!(exhibit.json["enabled"], json!(false));
        assert!(exhibit.rendered.contains("disabled"));
    }
}
