//! Time-series containers and text rendering for the figures.

use serde_json::{json, Value};
use spfail_world::Timeline;

/// One named series over measurement days.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(day, value)` points.
    pub points: Vec<(u16, f64)>,
}

impl Series {
    /// A new series.
    pub fn new(label: &str) -> Series {
        Series {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, day: u16, value: f64) {
        self.points.push((day, value));
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// JSON form: `[[day, value], ...]` with dates attached.
    pub fn to_json(&self) -> Value {
        json!({
            "label": self.label,
            "points": self.points.iter().map(|(d, v)| {
                json!({"day": d, "date": Timeline::date_label(*d), "value": v})
            }).collect::<Vec<_>>(),
        })
    }

    /// Render as a row of per-round values scaled into `0..=9` glyphs,
    /// good enough to show the *shape* in a terminal.
    pub fn sparkline(&self, lo: f64, hi: f64) -> String {
        const GLYPHS: [char; 10] = ['0', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
        self.points
            .iter()
            .map(|(_, v)| {
                let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.0 };
                GLYPHS[(t * 9.0).round() as usize]
            })
            .collect()
    }
}

/// Render several series that share a day axis.
pub fn render_chart(title: &str, series: &[Series], unit: &str) -> String {
    let mut out = format!("{title}\n");
    let days: Vec<u16> = series
        .first()
        .map(|s| s.points.iter().map(|(d, _)| *d).collect())
        .unwrap_or_default();
    if let (Some(first), Some(last)) = (days.first(), days.last()) {
        out.push_str(&format!(
            "  x: {} .. {} ({} rounds; '|' marks disclosure {})\n",
            Timeline::date_label(*first),
            Timeline::date_label(*last),
            days.len(),
            Timeline::date_label(Timeline::PUBLIC_DISCLOSURE),
        ));
    }
    let lo = 0.0;
    let hi = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, v)| *v))
        .fold(f64::EPSILON, f64::max);
    for s in series {
        let mut line = s.sparkline(lo, hi);
        // Mark the public disclosure with a separator where it falls.
        if let Some(pos) = days.iter().position(|&d| d >= Timeline::PUBLIC_DISCLOSURE) {
            if pos > 0 && pos < line.len() {
                line.insert(pos, '|');
            }
        }
        out.push_str(&format!(
            "  {:<28} [{}] last={:.1}{}\n",
            s.label,
            line,
            s.last().unwrap_or(0.0),
            unit
        ));
    }
    out.push_str(&format!("  (scale: 0 = 0{unit}, 9 = {hi:.1}{unit})\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let mut s = Series::new("x");
        s.push(0, 0.0);
        s.push(2, 50.0);
        s.push(4, 100.0);
        assert_eq!(s.sparkline(0.0, 100.0), "059");
        assert_eq!(s.last(), Some(100.0));
    }

    #[test]
    fn chart_renders_all_series() {
        let mut a = Series::new("alexa");
        let mut b = Series::new("two-week");
        for day in [96u16, 100, 104] {
            a.push(day, 90.0);
            b.push(day, 80.0);
        }
        let chart = render_chart("Figure 7", &[a, b], "%");
        assert!(chart.contains("alexa"));
        assert!(chart.contains("two-week"));
        assert!(chart.contains("2022-01-15"));
    }

    #[test]
    fn json_includes_dates() {
        let mut s = Series::new("x");
        s.push(100, 1.0);
        let v = s.to_json();
        assert_eq!(v["points"][0]["date"], "2022-01-19");
    }
}
