//! A complete measurement campaign in miniature (paper §5–§7): generate a
//! scaled-down Internet, run the initial sweep, the four-month
//! longitudinal measurement, and the notification campaign, then print
//! the headline findings.
//!
//! ```text
//! cargo run -p spfail --release --example measurement_campaign
//! cargo run -p spfail --release --example measurement_campaign -- --shards 4
//! cargo run -p spfail --release --example measurement_campaign -- \
//!     --shards 4 --dns-drop 0.1 --retry
//! ```
//!
//! `--shards N` runs the campaign on the sharded parallel engine; the
//! result is bit-for-bit identical for every `N` (see tests/parallel.rs).
//! `--dns-drop P` injects DNS datagram loss with probability `P` on every
//! probed host's resolver path, and `--retry` answers the induced
//! transient failures with the standard backoff policy. `--trace-out
//! PATH` records a structured trace and writes the JSONL events to
//! `PATH` plus a flamegraph-ready collapsed-stack file to
//! `PATH.collapsed`; `--profile` prints the per-span-path latency
//! profile. Either flag enables tracing, and the trace is byte-identical
//! across shard counts (see tests/trace_equivalence.rs).
//!
//! `--checkpoint PATH` drives the staged `Session` API and writes a
//! resumable checkpoint after the initial sweep and after every round;
//! `--resume` continues from that file (`tests/session_checkpoint.rs`
//! proves kill-and-resume is byte-identical to an uninterrupted run).
//! `--stop-after-round N` exits mid-campaign after `N` rounds — a
//! deterministic kill for exercising resume. `--incremental` re-probes
//! only hosts whose status can have changed since their last conclusive
//! measurement; the measured data is identical, the probe volume is not.
//! `--no-policy-cache` runs every SPF evaluation interpretively instead
//! of through the compiled-policy cache (bit-for-bit identical output,
//! slower), and `--cache-stats` prints the cache's hit/miss/interned
//! tallies. `--streaming` synthesizes the world lazily and runs the
//! bounded-memory sweep — peak heap stays O(vulnerable) instead of
//! O(hosts), and every measurement (including checkpoints driven by
//! `--checkpoint`/`--resume`) is bit-for-bit identical
//! (`tests/streaming_equivalence.rs`). The full flag vocabulary lives in
//! `examples/campaign_args.rs`.

use spfail::notify::{NotificationCampaign, PixelLog};
use spfail::prober::{CampaignRun, CampaignState, SnapshotStatus, StreamedCampaign};
use spfail::trace::format_us;
use spfail::world::{Population, SparsePopulation, Timeline, World, WorldConfig};

#[path = "campaign_args.rs"]
mod campaign_args;
use campaign_args::CampaignArgs;

/// Drive a staged [`spfail::prober::Session`] to completion,
/// checkpointing at every round boundary. Exits early when
/// `--stop-after-round` says so.
fn drive_staged(mut session: spfail::prober::Session, options: &CampaignArgs) -> CampaignRun {
    let path = options.checkpoint.as_deref().expect("checkpoint path set");
    while session.advance_round().is_some() {
        session.checkpoint(path).expect("write checkpoint");
        if options
            .stop_after_round
            .is_some_and(|n| session.rounds_done() >= n)
        {
            println!(
                "  stopping after round {} as requested; resume with --resume",
                session.rounds_done()
            );
            std::process::exit(0);
        }
    }
    let stats = session.stats();
    if options.incremental {
        println!(
            "  incremental rounds: {} probes issued, {} answered from carried state",
            stats.round_probes_issued, stats.round_probes_skipped
        );
    }
    session.finish()
}

/// The staged eager path: initial sweep (or resume), then rounds.
fn run_staged(world: &World, options: &CampaignArgs) -> CampaignRun {
    let path = options.checkpoint.as_deref().expect("checkpoint path set");
    let session = if options.resume {
        let session = spfail::prober::Session::restore(path, world)
            .unwrap_or_else(|e| panic!("cannot resume from {path}: {e}"));
        println!(
            "  resumed from {path}: {} rounds done, {} remaining",
            session.rounds_done(),
            session.rounds_remaining()
        );
        session
    } else {
        let mut session = options.builder().session(world);
        session.initial_sweep();
        session.checkpoint(path).expect("write checkpoint");
        session
    };
    drive_staged(session, options)
}

/// The streaming path: a lazy-synthesis sweep (or checkpoint adoption),
/// then the same staged rounds over the retained population.
fn run_streaming(config: WorldConfig, options: &CampaignArgs) -> (CampaignRun, SparsePopulation) {
    let streamed = if options.resume {
        let path = options.checkpoint.as_deref().expect("--resume requires --checkpoint");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let state = CampaignState::parse(&text)
            .unwrap_or_else(|e| panic!("cannot resume from {path}: {e}"));
        println!("  resumed from {path}: {} rounds done", state.rounds_done);
        StreamedCampaign::adopt(state, config)
    } else {
        StreamedCampaign::sweep(options.builder(), config)
    };
    let run = {
        let mut session = streamed
            .session()
            .expect("a streamed handoff state is self-consistent");
        match options.checkpoint.as_deref() {
            Some(path) => {
                if !options.resume {
                    session.checkpoint(path).expect("write checkpoint");
                }
                drive_staged(session, options)
            }
            None => {
                while session.advance_round().is_some() {}
                session.finish()
            }
        }
    };
    (run, streamed.into_population())
}

fn main() {
    let options = CampaignArgs::parse();
    let shards = options.shards;
    let config = WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    };
    println!(
        "{} a 1:{:.0} scale Internet (seed 0x{:x})...",
        if options.streaming {
            "streaming"
        } else {
            "generating"
        },
        1.0 / config.scale,
        config.seed
    );
    // The eager path materializes the world up front; the streaming path
    // synthesizes hosts on demand and retains only vulnerable MX groups.
    let world = if options.streaming {
        None
    } else {
        let world = World::generate(config.clone());
        println!(
            "  {} domains on {} unique server addresses",
            world.domains.len(),
            world.hosts.len()
        );
        Some(world)
    };

    println!("running the initial sweep ({})...", Timeline::date_label(0));
    if options.streaming {
        println!("  (streaming engine: lazy synthesis, bounded memory)");
    }
    if shards > 1 {
        println!("  (sharded engine, {shards} parallel workers)");
    }
    if options.dns_drop > 0.0 {
        println!(
            "  (injecting DNS datagram loss at {:.0}%{})",
            options.dns_drop * 100.0,
            if options.retry {
                ", answered with retries"
            } else {
                ", no retries"
            }
        );
    }
    let (run, streamed_population) = match &world {
        Some(world) => {
            let run = if options.checkpoint.is_some() {
                run_staged(world, &options)
            } else {
                options.builder().run(world)
            };
            (run, None)
        }
        None => {
            let (run, population) = run_streaming(config, &options);
            println!(
                "  retained {} hosts across {} vulnerable MX groups (everything else dropped)",
                population.host_count(),
                population.domain_count()
            );
            (run, Some(population))
        }
    };
    if options.cache_stats {
        match &run.cache {
            Some(stats) => println!(
                "policy cache: {} hits, {} misses ({:.1}% hit rate), {} policies interned",
                stats.hits,
                stats.misses,
                100.0 * stats.hit_rate().unwrap_or(0.0),
                stats.interned
            ),
            None => println!("policy cache: disabled (--no-policy-cache)"),
        }
    }
    let data = run.data;
    println!(
        "  {} addresses measured vulnerable, hosting {} domains",
        data.tracked.len(),
        data.vulnerable_domains.len()
    );
    if data.network.probe_retries > 0 {
        println!(
            "  network faults: {} DNS timeouts, {} retries, {} probes recovered",
            data.network.dns_timeouts, data.network.probe_retries, data.network.probes_recovered
        );
    }

    println!(
        "longitudinal rounds: {} measurements every {} days across two windows",
        data.rounds.len(),
        Timeline::ROUND_INTERVAL
    );

    // Patch trajectory: how many tracked hosts had been observed patched
    // by selected milestones.
    for (label, day) in [
        ("private notification", Timeline::PRIVATE_NOTIFICATION),
        ("window 1 ends", Timeline::WINDOW1_END),
        ("public disclosure", Timeline::PUBLIC_DISCLOSURE),
        ("final measurement", Timeline::END),
    ] {
        let patched = data
            .tracked
            .iter()
            .filter(|&&h| data.first_patched_day(h).is_some_and(|d| d <= day))
            .count();
        println!(
            "  by {} ({}): {}/{} hosts observed patched",
            label,
            Timeline::date_label(day),
            patched,
            data.tracked.len()
        );
    }

    // The February snapshot.
    let (mut patched, mut vulnerable, mut unknown) = (0, 0, 0);
    for status in data.snapshot.values() {
        match status {
            SnapshotStatus::Patched => patched += 1,
            SnapshotStatus::Vulnerable => vulnerable += 1,
            SnapshotStatus::Unknown => unknown += 1,
        }
    }
    let total = data.snapshot.len().max(1);
    println!(
        "February snapshot: {patched} patched ({:.0}%), {vulnerable} still vulnerable \
         ({:.0}%), {unknown} unknown",
        100.0 * patched as f64 / total as f64,
        100.0 * vulnerable as f64 / total as f64,
    );

    // The notification campaign — over the materialized world eagerly,
    // or the retained population when streaming (identical output: every
    // notified domain's full MX group is retained).
    let population: &dyn Population = match (&world, &streamed_population) {
        (Some(world), _) => world,
        (None, Some(population)) => population,
        (None, None) => unreachable!("streaming runs always retain a population"),
    };
    let mut pixels = PixelLog::new();
    let (_records, funnel) =
        NotificationCampaign::run(population, &data.vulnerable_domains, &mut pixels);
    println!(
        "notifications: {} sent, {} bounced ({:.1}%), {} opened, {} patched between \
         private and public disclosure",
        funnel.sent,
        funnel.bounced,
        100.0 * funnel.bounced as f64 / funnel.sent.max(1) as f64,
        funnel.opened,
        funnel.patched_between_disclosures,
    );

    if let Some(trace) = &run.trace {
        if let Some(path) = &options.trace_out {
            std::fs::write(path, trace.to_jsonl()).expect("write trace JSONL");
            let collapsed = format!("{path}.collapsed");
            std::fs::write(&collapsed, trace.to_collapsed()).expect("write collapsed stacks");
            println!(
                "trace: {} probe records -> {path} (JSONL), {collapsed} (collapsed stacks)",
                trace.len()
            );
        }
        if options.profile {
            let profile = trace.profile();
            println!("latency profile ({} probes):", profile.probe_count());
            println!(
                "  {:<34} {:>7} {:>12} {:>12}",
                "stack path", "count", "total", "self"
            );
            for (path, row) in profile.rows() {
                println!(
                    "  {:<34} {:>7} {:>12} {:>12}",
                    path,
                    row.count,
                    format_us(row.total_us),
                    format_us(row.self_us)
                );
            }
            for (phase, hist) in profile.phases() {
                println!(
                    "  phase {:<12} {:>6} probes, mean {}, max {}",
                    phase.label(),
                    hist.count(),
                    format_us(hist.mean().unwrap_or(0.0) as u64),
                    format_us(hist.max().unwrap_or(0))
                );
            }
        }
    }

    println!();
    println!(
        "paper's conclusion, reproduced: even after private notification and a\n\
         public CVE, ~80% of the initially vulnerable servers remain vulnerable."
    );
}
