//! A complete measurement campaign in miniature (paper §5–§7): generate a
//! scaled-down Internet, run the initial sweep, the four-month
//! longitudinal measurement, and the notification campaign, then print
//! the headline findings.
//!
//! ```text
//! cargo run -p spfail --release --example measurement_campaign
//! cargo run -p spfail --release --example measurement_campaign -- --shards 4
//! ```
//!
//! `--shards N` runs the campaign on the sharded parallel engine; the
//! result is bit-for-bit identical for every `N` (see tests/parallel.rs).

use spfail::notify::{NotificationCampaign, PixelLog};
use spfail::prober::{Campaign, SnapshotStatus};
use spfail::world::{Timeline, World, WorldConfig};

/// Parse `--shards N` from the command line (0 or absent = sequential).
fn shards_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--shards expects a positive integer");
                    std::process::exit(2);
                });
        }
        if let Some(v) = arg.strip_prefix("--shards=") {
            return v.parse().unwrap_or_else(|_| {
                eprintln!("--shards expects a positive integer");
                std::process::exit(2);
            });
        }
    }
    0
}

fn main() {
    let shards = shards_from_args();
    let config = WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    };
    println!(
        "generating a 1:{:.0} scale Internet (seed 0x{:x})...",
        1.0 / config.scale,
        config.seed
    );
    let world = World::generate(config);
    println!(
        "  {} domains on {} unique server addresses",
        world.domains.len(),
        world.hosts.len()
    );

    println!("running the initial sweep ({})...", Timeline::date_label(0));
    let data = if shards > 1 {
        println!("  (sharded engine, {shards} parallel workers)");
        Campaign::run_sharded(&world, shards)
    } else {
        Campaign::run(&world)
    };
    println!(
        "  {} addresses measured vulnerable, hosting {} domains",
        data.tracked.len(),
        data.vulnerable_domains.len()
    );

    println!(
        "longitudinal rounds: {} measurements every {} days across two windows",
        data.rounds.len(),
        Timeline::ROUND_INTERVAL
    );

    // Patch trajectory: how many tracked hosts had been observed patched
    // by selected milestones.
    for (label, day) in [
        ("private notification", Timeline::PRIVATE_NOTIFICATION),
        ("window 1 ends", Timeline::WINDOW1_END),
        ("public disclosure", Timeline::PUBLIC_DISCLOSURE),
        ("final measurement", Timeline::END),
    ] {
        let patched = data
            .tracked
            .iter()
            .filter(|&&h| data.first_patched_day(h).is_some_and(|d| d <= day))
            .count();
        println!(
            "  by {} ({}): {}/{} hosts observed patched",
            label,
            Timeline::date_label(day),
            patched,
            data.tracked.len()
        );
    }

    // The February snapshot.
    let (mut patched, mut vulnerable, mut unknown) = (0, 0, 0);
    for status in data.snapshot.values() {
        match status {
            SnapshotStatus::Patched => patched += 1,
            SnapshotStatus::Vulnerable => vulnerable += 1,
            SnapshotStatus::Unknown => unknown += 1,
        }
    }
    let total = data.snapshot.len().max(1);
    println!(
        "February snapshot: {patched} patched ({:.0}%), {vulnerable} still vulnerable \
         ({:.0}%), {unknown} unknown",
        100.0 * patched as f64 / total as f64,
        100.0 * vulnerable as f64 / total as f64,
    );

    // The notification campaign.
    let mut pixels = PixelLog::new();
    let (_records, funnel) =
        NotificationCampaign::run(&world, &data.vulnerable_domains, &mut pixels);
    println!(
        "notifications: {} sent, {} bounced ({:.1}%), {} opened, {} patched between \
         private and public disclosure",
        funnel.sent,
        funnel.bounced,
        100.0 * funnel.bounced as f64 / funnel.sent.max(1) as f64,
        funnel.opened,
        funnel.patched_between_disclosures,
    );

    println!();
    println!(
        "paper's conclusion, reproduced: even after private notification and a\n\
         public CVE, ~80% of the initially vulnerable servers remain vulnerable."
    );
}
