//! A complete measurement campaign in miniature (paper §5–§7): generate a
//! scaled-down Internet, run the initial sweep, the four-month
//! longitudinal measurement, and the notification campaign, then print
//! the headline findings.
//!
//! ```text
//! cargo run -p spfail --release --example measurement_campaign
//! cargo run -p spfail --release --example measurement_campaign -- --shards 4
//! cargo run -p spfail --release --example measurement_campaign -- \
//!     --shards 4 --dns-drop 0.1 --retry
//! ```
//!
//! `--shards N` runs the campaign on the sharded parallel engine; the
//! result is bit-for-bit identical for every `N` (see tests/parallel.rs).
//! `--dns-drop P` injects DNS datagram loss with probability `P` on every
//! probed host's resolver path, and `--retry` answers the induced
//! transient failures with the standard backoff policy. `--trace-out
//! PATH` records a structured trace and writes the JSONL events to
//! `PATH` plus a flamegraph-ready collapsed-stack file to
//! `PATH.collapsed`; `--profile` prints the per-span-path latency
//! profile. Either flag enables tracing, and the trace is byte-identical
//! across shard counts (see tests/trace_equivalence.rs).

use spfail::netsim::{FaultPlan, FaultProfile};
use spfail::notify::{NotificationCampaign, PixelLog};
use spfail::prober::{CampaignBuilder, RetryPolicy, SnapshotStatus, TraceConfig};
use spfail::trace::format_us;
use spfail::world::{Timeline, World, WorldConfig};

/// Command-line options: `--shards N`, `--dns-drop P`, `--retry`,
/// `--trace-out PATH`, `--profile`.
struct Options {
    shards: usize,
    dns_drop: f64,
    retry: bool,
    trace_out: Option<String>,
    profile: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        shards: 0,
        dns_drop: 0.0,
        retry: false,
        trace_out: None,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    let bad = |flag: &str, wants: &str| -> ! {
        eprintln!("{flag} expects {wants}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str, wants: &str| -> String {
            arg.strip_prefix(&format!("{flag}="))
                .map(str::to_string)
                .or_else(|| args.next())
                .unwrap_or_else(|| bad(flag, wants))
        };
        if arg == "--shards" || arg.starts_with("--shards=") {
            let wants = "a positive integer";
            opts.shards = value("--shards", wants)
                .parse()
                .ok()
                .filter(|&n: &usize| n > 0)
                .unwrap_or_else(|| bad("--shards", wants));
        } else if arg == "--dns-drop" || arg.starts_with("--dns-drop=") {
            let wants = "a probability in [0, 1]";
            opts.dns_drop = value("--dns-drop", wants)
                .parse()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .unwrap_or_else(|| bad("--dns-drop", wants));
        } else if arg == "--retry" {
            opts.retry = true;
        } else if arg == "--trace-out" || arg.starts_with("--trace-out=") {
            opts.trace_out = Some(value("--trace-out", "an output path"));
        } else if arg == "--profile" {
            opts.profile = true;
        }
    }
    opts
}

fn main() {
    let options = parse_args();
    let shards = options.shards;
    let config = WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    };
    println!(
        "generating a 1:{:.0} scale Internet (seed 0x{:x})...",
        1.0 / config.scale,
        config.seed
    );
    let world = World::generate(config);
    println!(
        "  {} domains on {} unique server addresses",
        world.domains.len(),
        world.hosts.len()
    );

    println!("running the initial sweep ({})...", Timeline::date_label(0));
    if shards > 1 {
        println!("  (sharded engine, {shards} parallel workers)");
    }
    let mut builder = CampaignBuilder::new().shards(shards);
    if options.dns_drop > 0.0 {
        println!(
            "  (injecting DNS datagram loss at {:.0}%{})",
            options.dns_drop * 100.0,
            if options.retry {
                ", answered with retries"
            } else {
                ", no retries"
            }
        );
        builder = builder.faults(FaultProfile {
            dns: FaultPlan::dns_timeout(options.dns_drop),
            ..FaultProfile::NONE
        });
    }
    if options.retry {
        builder = builder.retry(RetryPolicy::standard());
    }
    let tracing = options.trace_out.is_some() || options.profile;
    if tracing {
        builder = builder.trace(TraceConfig::enabled());
    }
    let run = builder.run(&world);
    let data = run.data;
    println!(
        "  {} addresses measured vulnerable, hosting {} domains",
        data.tracked.len(),
        data.vulnerable_domains.len()
    );
    if data.network.probe_retries > 0 {
        println!(
            "  network faults: {} DNS timeouts, {} retries, {} probes recovered",
            data.network.dns_timeouts, data.network.probe_retries, data.network.probes_recovered
        );
    }

    println!(
        "longitudinal rounds: {} measurements every {} days across two windows",
        data.rounds.len(),
        Timeline::ROUND_INTERVAL
    );

    // Patch trajectory: how many tracked hosts had been observed patched
    // by selected milestones.
    for (label, day) in [
        ("private notification", Timeline::PRIVATE_NOTIFICATION),
        ("window 1 ends", Timeline::WINDOW1_END),
        ("public disclosure", Timeline::PUBLIC_DISCLOSURE),
        ("final measurement", Timeline::END),
    ] {
        let patched = data
            .tracked
            .iter()
            .filter(|&&h| data.first_patched_day(h).is_some_and(|d| d <= day))
            .count();
        println!(
            "  by {} ({}): {}/{} hosts observed patched",
            label,
            Timeline::date_label(day),
            patched,
            data.tracked.len()
        );
    }

    // The February snapshot.
    let (mut patched, mut vulnerable, mut unknown) = (0, 0, 0);
    for status in data.snapshot.values() {
        match status {
            SnapshotStatus::Patched => patched += 1,
            SnapshotStatus::Vulnerable => vulnerable += 1,
            SnapshotStatus::Unknown => unknown += 1,
        }
    }
    let total = data.snapshot.len().max(1);
    println!(
        "February snapshot: {patched} patched ({:.0}%), {vulnerable} still vulnerable \
         ({:.0}%), {unknown} unknown",
        100.0 * patched as f64 / total as f64,
        100.0 * vulnerable as f64 / total as f64,
    );

    // The notification campaign.
    let mut pixels = PixelLog::new();
    let (_records, funnel) =
        NotificationCampaign::run(&world, &data.vulnerable_domains, &mut pixels);
    println!(
        "notifications: {} sent, {} bounced ({:.1}%), {} opened, {} patched between \
         private and public disclosure",
        funnel.sent,
        funnel.bounced,
        100.0 * funnel.bounced as f64 / funnel.sent.max(1) as f64,
        funnel.opened,
        funnel.patched_between_disclosures,
    );

    if let Some(trace) = &run.trace {
        if let Some(path) = &options.trace_out {
            std::fs::write(path, trace.to_jsonl()).expect("write trace JSONL");
            let collapsed = format!("{path}.collapsed");
            std::fs::write(&collapsed, trace.to_collapsed()).expect("write collapsed stacks");
            println!(
                "trace: {} probe records -> {path} (JSONL), {collapsed} (collapsed stacks)",
                trace.len()
            );
        }
        if options.profile {
            let profile = trace.profile();
            println!("latency profile ({} probes):", profile.probe_count());
            println!(
                "  {:<34} {:>7} {:>12} {:>12}",
                "stack path", "count", "total", "self"
            );
            for (path, row) in profile.rows() {
                println!(
                    "  {:<34} {:>7} {:>12} {:>12}",
                    path,
                    row.count,
                    format_us(row.total_us),
                    format_us(row.self_us)
                );
            }
            for (phase, hist) in profile.phases() {
                println!(
                    "  phase {:<12} {:>6} probes, mean {}, max {}",
                    phase.label(),
                    hist.count(),
                    format_us(hist.mean().unwrap_or(0.0) as u64),
                    format_us(hist.max().unwrap_or(0))
                );
            }
        }
    }

    println!();
    println!(
        "paper's conclusion, reproduced: even after private notification and a\n\
         public CVE, ~80% of the initially vulnerable servers remain vulnerable."
    );
}
