//! Remote detection end-to-end (paper §4.2/§5.1): probe three mail
//! servers over simulated SMTP and classify their SPF implementations
//! from the DNS queries they send — without harming any of them.
//!
//! ```text
//! cargo run -p spfail --example detect_vulnerable
//! ```

use std::sync::Arc;

use spfail::dns::{Directory, PcapSink, QueryLog, SpfTestAuthority};
use spfail::libspf2::MacroBehavior;
use spfail::mta::{Mta, MtaConfig};
use spfail::netsim::{SimClock, SimRng};
use spfail::prober::classify;
use spfail::smtp::address::EmailAddress;
use spfail::smtp::command::Command;

fn probe(mta: &mut Mta, log: &QueryLog, id: &str, suite: &str) {
    let log_start = log.len();

    // The NoMsg probe: EHLO, MAIL FROM with the unique probe domain,
    // RCPT, DATA — then hang up before a single message byte.
    let origin = SpfTestAuthority::default_origin();
    let sender = EmailAddress::new(
        "mmj7yzdm0tbk",
        &format!("{id}.{suite}.{}", origin.to_ascii()),
    )
    .expect("valid probe address");

    mta.connect("203.0.113.25".parse().expect("ip"));
    let (mut session, banner) = mta.open_session();
    println!("  S: {banner}");
    for command in [
        Command::Ehlo("probe.dns-lab.org".into()),
        Command::MailFrom(sender),
        Command::RcptTo(EmailAddress::parse("postmaster@target.test").expect("valid")),
        Command::Data,
    ] {
        println!("  C: {command}");
        let reply = session.handle(&command);
        println!("  S: {reply}");
        if reply.is_failure() {
            break;
        }
    }
    println!("  C: <connection dropped before message data (NoMsg)>");

    // Classify from the authoritative server's query log.
    let entries = log.entries_from(log_start);
    println!("  measurement zone observed:");
    for entry in &entries {
        println!("    {} {}", entry.qtype, entry.qname);
    }
    let classification = classify(&entries, id, suite, &origin);
    let verdict = if classification.vulnerable() {
        "VULNERABLE libSPF2 (CVE-2021-33912/33913)"
    } else if classification.erroneous_non_vulnerable() {
        "non-compliant macro expansion (but not the vulnerable pattern)"
    } else if classification.conclusive() {
        "RFC-compliant SPF implementation"
    } else {
        "inconclusive (no SPF activity observed)"
    };
    println!("  verdict: {verdict}");
    println!();
}

fn main() {
    // The measurement infrastructure: an authoritative DNS server for
    // spf-test.dns-lab.org that synthesises per-probe SPF policies and
    // logs every query.
    let clock = SimClock::new();
    let log = QueryLog::new();
    let pcap = PcapSink::new();
    let directory = Directory::new();
    directory.register(Arc::new(
        SpfTestAuthority::new(SpfTestAuthority::default_origin(), log.clone())
            .with_pcap(pcap.clone()),
    ));

    let build = |config: MtaConfig, seed: u64| {
        Mta::new(
            config,
            "198.51.100.10".parse().expect("ip"),
            directory.clone(),
            clock.clone(),
            SimRng::new(seed),
        )
    };

    println!("=== probing mx.vulnerable.example (libSPF2 1.2.10) ===");
    probe(
        &mut build(MtaConfig::vulnerable("mx.vulnerable.example"), 1),
        &log,
        "aa1",
        "demo",
    );

    println!("=== probing mx.compliant.example (RFC 7208) ===");
    probe(
        &mut build(MtaConfig::compliant("mx.compliant.example"), 2),
        &log,
        "bb2",
        "demo",
    );

    println!("=== probing mx.sloppy.example (reverses but never truncates) ===");
    let mut sloppy = MtaConfig::compliant("mx.sloppy.example");
    sloppy.spf_impls = vec![MacroBehavior::ReverseNoTruncate];
    probe(&mut build(sloppy, 3), &log, "cc3", "demo");

    // Everything the measurement server saw, as a real capture file —
    // open it in Wireshark and the vulnerable query is right there.
    let path = std::env::temp_dir().join("spfail-probe.pcap");
    pcap.write_to(&path).expect("writable temp dir");
    println!(
        "wrote {} ({} packets, {} bytes) — try `tshark -r` or Wireshark",
        path.display(),
        pcap.packet_count(),
        pcap.to_bytes().len()
    );
}
