//! Quickstart: parse and evaluate SPF policies, and see the three-way
//! behavioural split at the heart of the paper.
//!
//! ```text
//! cargo run -p spfail --example quickstart
//! ```

use std::collections::HashMap;

use spfail::dns::resolver::{LookupError, LookupOutcome};
use spfail::dns::{Name, RData, Record, RecordType};
use spfail::libspf2::LibSpf2Expander;
use spfail::spf::eval::{Evaluator, SpfDns};
use spfail::spf::expand::{CompliantExpander, MacroContext, MacroExpander};
use spfail::spf::macrostring::MacroString;
use spfail::spf::record::SpfRecord;

/// A tiny in-memory DNS fixture.
#[derive(Default)]
struct FixtureDns {
    records: HashMap<(Name, RecordType), Vec<Record>>,
}

impl FixtureDns {
    fn add(&mut self, name: &str, rdata: RData) {
        let name = Name::parse(name).expect("valid name");
        self.records
            .entry((name.clone(), rdata.record_type()))
            .or_default()
            .push(Record::new(name, 300, rdata));
    }
}

impl SpfDns for FixtureDns {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        match self.records.get(&(name.to_lowercase(), rtype)) {
            Some(records) => Ok(LookupOutcome::Records(records.clone().into())),
            None => Ok(LookupOutcome::NxDomain),
        }
    }
}

fn main() {
    // ---- 1. Parse the paper's example policy (§2.2). --------------------
    let policy = "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all";
    let record = SpfRecord::parse(policy).expect("valid policy");
    println!("policy: {policy}");
    println!("  parsed {} mechanisms", record.mechanisms.len());

    // ---- 2. Evaluate check_host() against fixture DNS. ------------------
    let mut dns = FixtureDns::default();
    dns.add("example.com", RData::txt(policy));
    dns.add("foo.example.com", RData::A("192.0.2.7".parse().expect("ip")));
    dns.add("bar.org", RData::txt("v=spf1 ip4:203.0.113.0/24 -all"));

    let mut expander = CompliantExpander;
    for client in ["192.0.2.7", "192.0.2.1", "203.0.113.9", "198.51.100.1"] {
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host(client.parse().expect("ip"), "user", "example.com");
        println!("  mail from user@example.com via {client}: {result}");
    }

    // ---- 3. The fingerprint: one macro, three implementations. ----------
    println!();
    println!("the %{{d1r}} fingerprint for sender user@example.com (§4.2):");
    let ms = MacroString::parse("%{d1r}.foo.com").expect("valid macro");
    let ctx = MacroContext::new("user", "example.com", "192.0.2.3".parse().expect("ip"));
    let mut implementations: Vec<(&str, Box<dyn MacroExpander>)> = vec![
        ("RFC 7208 compliant", Box::new(CompliantExpander)),
        ("libSPF2 1.2.10 (vulnerable)", Box::new(LibSpf2Expander::vulnerable())),
        ("libSPF2 patched", Box::new(LibSpf2Expander::patched())),
    ];
    for (label, expander) in implementations.iter_mut() {
        let out = expander.expand(&ms, &ctx, false).expect("expansion");
        println!("  {label:<28} -> DNS query for {out}");
    }
    println!();
    println!(
        "a vulnerable server reveals itself by *what it asks the DNS* — no\n\
         exploit, no crash, no delivered email."
    );
}
