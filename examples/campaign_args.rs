//! The shared command-line vocabulary of the campaign-driving examples.
//!
//! Each example pulls this file in with `#[path = "campaign_args.rs"]
//! mod campaign_args;` and parses the same flags the same way:
//!
//! * `--shards N` — run the sharded parallel engine with `N` workers;
//! * `--dns-drop P` — inject DNS datagram loss with probability `P`;
//! * `--retry` — answer transient failures with the standard backoff;
//! * `--trace-out PATH` — record a structured trace to `PATH` (JSONL)
//!   plus `PATH.collapsed` (flamegraph stacks);
//! * `--profile` — print the per-span-path latency profile;
//! * `--incremental` — re-probe only hosts whose status can have changed;
//! * `--no-policy-cache` — evaluate every SPF check interpretively
//!   instead of through the compiled-policy cache (the measurements are
//!   bit-for-bit identical; only the wall-clock cost changes);
//! * `--cache-stats` — print the policy cache's hit/miss/interned tallies;
//! * `--checkpoint PATH` — drive the staged `Session` API and write a
//!   resumable checkpoint after the initial sweep and after every round;
//! * `--resume` — continue from the `--checkpoint` file instead of
//!   starting over;
//! * `--stop-after-round N` — checkpoint and exit after `N` rounds (a
//!   deterministic mid-campaign kill, used by the CI resume job);
//! * `--streaming` — synthesize the world lazily and run the
//!   bounded-memory streaming sweep instead of materializing the whole
//!   population; every measurement is bit-for-bit identical.
//!
//! Flags accept both `--flag value` and `--flag=value`. Unknown flags
//! abort with exit code 2.

use spfail::netsim::{FaultPlan, FaultProfile};
use spfail::prober::{CampaignBuilder, RetryPolicy, TraceConfig};

/// Parsed campaign options. Examples use the subset they document.
#[allow(dead_code)]
pub struct CampaignArgs {
    pub shards: usize,
    pub dns_drop: f64,
    pub retry: bool,
    pub trace_out: Option<String>,
    pub profile: bool,
    pub incremental: bool,
    pub no_policy_cache: bool,
    pub cache_stats: bool,
    pub checkpoint: Option<String>,
    pub resume: bool,
    pub stop_after_round: Option<usize>,
    pub streaming: bool,
}

#[allow(dead_code)]
impl CampaignArgs {
    /// Parse the process arguments.
    pub fn parse() -> CampaignArgs {
        CampaignArgs::parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument stream (testable).
    pub fn parse_from(mut args: impl Iterator<Item = String>) -> CampaignArgs {
        let mut opts = CampaignArgs {
            shards: 0,
            dns_drop: 0.0,
            retry: false,
            trace_out: None,
            profile: false,
            incremental: false,
            no_policy_cache: false,
            cache_stats: false,
            checkpoint: None,
            resume: false,
            stop_after_round: None,
            streaming: false,
        };
        let bad = |flag: &str, wants: &str| -> ! {
            eprintln!("{flag} expects {wants}");
            std::process::exit(2);
        };
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = |flag: &str, wants: &str| -> String {
                inline
                    .clone()
                    .or_else(|| args.next())
                    .unwrap_or_else(|| bad(flag, wants))
            };
            match flag.as_str() {
                "--shards" => {
                    let wants = "a positive integer";
                    opts.shards = value("--shards", wants)
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| bad("--shards", wants));
                }
                "--dns-drop" => {
                    let wants = "a probability in [0, 1]";
                    opts.dns_drop = value("--dns-drop", wants)
                        .parse()
                        .ok()
                        .filter(|p| (0.0..=1.0).contains(p))
                        .unwrap_or_else(|| bad("--dns-drop", wants));
                }
                "--retry" => opts.retry = true,
                "--trace-out" => opts.trace_out = Some(value("--trace-out", "an output path")),
                "--profile" => opts.profile = true,
                "--incremental" => opts.incremental = true,
                "--no-policy-cache" => opts.no_policy_cache = true,
                "--cache-stats" => opts.cache_stats = true,
                "--checkpoint" => {
                    opts.checkpoint = Some(value("--checkpoint", "a checkpoint path"));
                }
                "--resume" => opts.resume = true,
                "--streaming" => opts.streaming = true,
                "--stop-after-round" => {
                    let wants = "a round count";
                    opts.stop_after_round = Some(
                        value("--stop-after-round", wants)
                            .parse()
                            .unwrap_or_else(|_| bad("--stop-after-round", wants)),
                    );
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        if opts.resume && opts.checkpoint.is_none() {
            eprintln!("--resume requires --checkpoint PATH");
            std::process::exit(2);
        }
        opts
    }

    /// Whether any tracing output was requested.
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some() || self.profile
    }

    /// A [`CampaignBuilder`] configured from these flags.
    pub fn builder(&self) -> CampaignBuilder {
        let mut builder = CampaignBuilder::new().shards(self.shards);
        if self.dns_drop > 0.0 {
            builder = builder.faults(FaultProfile {
                dns: FaultPlan::dns_timeout(self.dns_drop),
                ..FaultProfile::NONE
            });
        }
        if self.retry {
            builder = builder.retry(RetryPolicy::standard());
        }
        if self.tracing() {
            builder = builder.trace(TraceConfig::enabled());
        }
        if self.incremental {
            builder = builder.incremental();
        }
        if self.no_policy_cache {
            builder = builder.policy_cache(false);
        }
        builder
    }
}
