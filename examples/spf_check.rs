//! `spf_check` — evaluate an SPF policy from the command line, the way a
//! receiving MTA would, with a choice of SPF implementation.
//!
//! ```text
//! cargo run -p spfail --example spf_check -- \
//!     --record 'v=spf1 a:%{d1r}.foo.com ip4:192.0.2.0/24 -all' \
//!     --sender user@example.com --ip 192.0.2.55 \
//!     [--impl rfc7208|libspf2-vulnerable|libspf2-patched]
//! ```
//!
//! Because no live DNS exists here, every A/AAAA/MX lookup the policy
//! triggers resolves to `192.0.2.55` (so `--ip 192.0.2.55` exercises the
//! matching path) and the queried names are printed — which is the
//! interesting part: run it with `--impl libspf2-vulnerable` and watch the
//! mangled queries appear.

use spfail::dns::resolver::{LookupError, LookupOutcome};
use spfail::dns::{Name, RData, Record, RecordType};
use spfail::libspf2::LibSpf2Expander;
use spfail::spf::eval::{Evaluator, SpfDns, TraceEvent};
use spfail::spf::expand::{CompliantExpander, MacroExpander};
use spfail::spf::record::SpfRecord;

struct EchoDns {
    record: String,
    sender_domain: String,
}

impl SpfDns for EchoDns {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        match rtype {
            RecordType::TXT if name.to_ascii().eq_ignore_ascii_case(&self.sender_domain) => {
                Ok(LookupOutcome::Records(vec![Record::new(
                    name.clone(),
                    300,
                    RData::txt(&self.record),
                )].into()))
            }
            RecordType::A => Ok(LookupOutcome::Records(vec![Record::new(
                name.clone(),
                300,
                RData::A("192.0.2.55".parse().expect("ip")),
            )].into())),
            RecordType::MX => Ok(LookupOutcome::Records(vec![Record::new(
                name.clone(),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: name.child("mx").unwrap_or_else(|_| name.clone()),
                },
            )].into())),
            _ => Ok(LookupOutcome::NoRecords),
        }
    }
}

fn main() {
    let mut record = "v=spf1 a:%{d1r}.foo.com ip4:192.0.2.0/24 -all".to_string();
    let mut sender = "user@example.com".to_string();
    let mut ip = "192.0.2.55".to_string();
    let mut implementation = "rfc7208".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--record" => record = value("--record"),
            "--sender" => sender = value("--sender"),
            "--ip" => ip = value("--ip"),
            "--impl" => implementation = value("--impl"),
            other => {
                eprintln!("unknown flag {other}; see the doc comment for usage");
                std::process::exit(2);
            }
        }
    }

    let parsed = match SpfRecord::parse(&record) {
        Ok(r) => r,
        Err(e) => {
            println!("record does not parse: {e} -> permerror");
            std::process::exit(1);
        }
    };
    println!("record: {record}");
    println!(
        "  {} mechanisms, {} modifiers",
        parsed.mechanisms.len(),
        parsed.modifiers.len()
    );

    let (local, domain) = sender.split_once('@').unwrap_or(("postmaster", &sender));
    let client: std::net::IpAddr = ip.parse().expect("--ip must be an IP address");

    let mut dns = EchoDns {
        record: record.clone(),
        sender_domain: domain.to_string(),
    };
    let mut expander: Box<dyn MacroExpander> = match implementation.as_str() {
        "rfc7208" => Box::new(CompliantExpander),
        "libspf2-vulnerable" => Box::new(LibSpf2Expander::vulnerable()),
        "libspf2-patched" => Box::new(LibSpf2Expander::patched()),
        other => {
            eprintln!("unknown --impl {other}");
            std::process::exit(2);
        }
    };
    let mut eval = Evaluator::new(&mut dns, &mut expander);
    let result = eval.check_host(client, local, domain);

    println!("sender: {local}@{domain}, client ip: {client}, impl: {implementation}");
    println!("DNS activity:");
    for event in eval.trace() {
        match event {
            TraceEvent::Query { name, rtype } => println!("  query {rtype} {name}"),
            TraceEvent::Mechanism { name, matched } => {
                println!("  mechanism {name}: {}", if *matched { "match" } else { "no match" })
            }
            TraceEvent::Recurse { domain } => println!("  recurse into {domain}"),
            TraceEvent::ExpanderFault(fault) => println!("  expander fault: {fault}"),
        }
    }
    if let Some(explanation) = eval.explanation() {
        println!("explanation: {explanation}");
    }
    println!("result: {result}");
}
