//! The DNS substrate as a standalone toolbox: parse a master file, serve
//! it, resolve through the real delegation hierarchy, and capture the
//! traffic as a pcap.
//!
//! ```text
//! cargo run -p spfail --example dns_toolbox
//! ```

use std::net::Ipv4Addr;
use std::sync::Arc;

use spfail::dns::{
    parse_zone, render_zone, IterativeResolver, Name, PcapSink, RecordType, SpfTestAuthority,
    StaticAuthority, ZoneBuilder,
};
use spfail::dns::rdata::{RData, Record};
use spfail::dns::QueryLog;
use spfail::netsim::{SimRng, SimTime};

fn main() {
    // ---- 1. A zone from its master file. --------------------------------
    let zone_text = concat!(
        "$ORIGIN dns-lab.org.\n",
        "$TTL 300\n",
        "@      IN SOA  ns1 hostmaster 2021101101 7200 3600 1209600 300\n",
        "@      IN NS   ns1\n",
        "ns1    IN A    192.0.2.3\n",
        "probe  IN A    203.0.113.25\n",
        "@      IN TXT  \"v=spf1 ip4:203.0.113.25 -all\"\n",
    );
    let zone = parse_zone(zone_text).expect("valid zone file");
    println!(
        "parsed {} with {} records; canonical form:",
        zone.origin(),
        zone.records().count()
    );
    print!("{}", render_zone(&zone));
    println!();

    // ---- 2. A delegation hierarchy: root -> org -> dns-lab.org. ---------
    let root_zone = ZoneBuilder::new(Name::root())
        .record(Record::new(
            Name::parse("org").expect("name"),
            86_400,
            RData::Ns(Name::parse("a.gtld.net").expect("name")),
        ))
        .a(
            &Name::parse("a.gtld.net").expect("name"),
            86_400,
            Ipv4Addr::new(192, 0, 2, 2),
        )
        .build();
    let org_zone = ZoneBuilder::new(Name::parse("org").expect("name"))
        .record(Record::new(
            Name::parse("dns-lab.org").expect("name"),
            86_400,
            RData::Ns(Name::parse("ns1.dns-lab.org").expect("name")),
        ))
        .a(
            &Name::parse("ns1.dns-lab.org").expect("name"),
            86_400,
            Ipv4Addr::new(192, 0, 2, 3),
        )
        .build();

    let mut resolver = IterativeResolver::new(
        Ipv4Addr::new(192, 0, 2, 1),
        "198.51.100.1".parse().expect("ip"),
    );
    resolver.register(Ipv4Addr::new(192, 0, 2, 1), Arc::new(StaticAuthority::new(root_zone)));
    resolver.register(Ipv4Addr::new(192, 0, 2, 2), Arc::new(StaticAuthority::new(org_zone)));
    resolver.register(Ipv4Addr::new(192, 0, 2, 3), Arc::new(StaticAuthority::new(zone)));

    let mut rng = SimRng::new(1);
    let result = resolver
        .resolve(
            &mut rng,
            &Name::parse("probe.dns-lab.org").expect("name"),
            RecordType::A,
            SimTime::EPOCH,
        )
        .expect("resolves");
    println!(
        "iterative walk for probe.dns-lab.org A: {} hop(s) via {:?}",
        result.path.len(),
        result.path
    );
    for answer in &result.response.answers {
        println!("  answer: {answer}");
    }
    println!();

    // ---- 3. The measurement zone, captured to pcap. ---------------------
    let pcap = PcapSink::new();
    let log = QueryLog::new();
    let authority = SpfTestAuthority::new(SpfTestAuthority::default_origin(), log)
        .with_pcap(pcap.clone());
    use spfail::dns::{Authority, Message};
    for (i, qname) in [
        "ab1.s1.spf-test.dns-lab.org",
        "org.org.dns-lab.spf-test.s1.ab1.ab1.s1.spf-test.dns-lab.org",
        "b.ab1.s1.spf-test.dns-lab.org",
    ]
    .iter()
    .enumerate()
    {
        let rtype = if i == 0 { RecordType::TXT } else { RecordType::A };
        let q = Message::query(i as u16 + 1, Name::parse(qname).expect("name"), rtype);
        authority.answer(&q, "198.51.100.9".parse().expect("ip"), SimTime::EPOCH);
    }
    let path = std::env::temp_dir().join("spfail-toolbox.pcap");
    pcap.write_to(&path).expect("writable temp dir");
    println!(
        "captured a vulnerable host's SPF lookups: {} packets -> {}",
        pcap.packet_count(),
        path.display()
    );
}
