//! Proof-of-concept for both CVEs over the simulated heap (paper §4.1).
//!
//! An attacker controls two inputs to a victim's libSPF2: the SPF record
//! of a domain they own (pulled down via DNS) and the `MAIL FROM` address
//! they send. This example shows how each bug corrupts the simulated heap
//! — and why the *measurement* probe never does.
//!
//! ```text
//! cargo run -p spfail --example cve_poc
//! ```

use spfail::libspf2::{LibSpf2Config, LibSpf2Expander, LibSpf2Version};
use spfail::spf::expand::{MacroContext, MacroExpander};
use spfail::spf::macrostring::MacroString;

fn main() {
    // ---- CVE-2021-33912: the sprintf sign-extension overflow. -----------
    println!("== CVE-2021-33912: URL-encoding sprintf overflow ==");
    println!("record mechanism: exists:%{{L}}.attacker.example   (uppercase L = URL-encode)");
    println!("crafted MAIL FROM local part contains bytes >= 0x80 (\"caf\\u{{e9}}\")");
    let ctx = MacroContext::new("caf\u{e9}", "victim-sender.example", "192.0.2.66".parse().expect("ip"));
    let ms = MacroString::parse("%{L}.attacker.example").expect("valid macro");

    let mut vulnerable = LibSpf2Expander::vulnerable();
    let out = vulnerable.expand(&ms, &ctx, false).expect("expansion survives");
    println!("  expansion written: {out}");
    let heap = vulnerable.heap();
    println!(
        "  heap: corrupted={} (overflowed {} byte(s), max overrun {})",
        heap.corrupted(),
        heap.overflow_events().len(),
        heap.max_overrun()
    );
    println!("  -> each high byte costs 9 output bytes where 3 were budgeted\n");

    // ---- CVE-2021-33913: the length-reassignment overflow. ---------------
    println!("== CVE-2021-33913: buffer length reassignment ==");
    println!("record mechanism: a:%{{D1R}}.attacker.example  (reverse + truncate + URL-encode)");
    // The first label becomes the *truncated* part after reversal, so the
    // attacker keeps it short ("x") to force a tiny allocation, and packs
    // the payload into the remaining labels.
    let long_domain = "x.payload-aaaaaaaaaaaaaaaaaaaa.payload-bbbbbbbbbbbbbbbbbbbb.\
                       payload-cccccccccccccccccccc";
    println!("crafted sender domain: {long_domain}");
    let ctx = MacroContext::new("u", long_domain, "192.0.2.66".parse().expect("ip"));
    let ms = MacroString::parse("%{D1R}").expect("valid macro");

    let mut vulnerable = LibSpf2Expander::vulnerable();
    let out = vulnerable.expand(&ms, &ctx, false).expect("expansion survives");
    println!("  expansion written: {:.60}...", out);
    let heap = vulnerable.heap();
    println!(
        "  heap: corrupted={}, {} attacker-controlled byte(s) past the allocation \
         (<= 100 per the paper)",
        heap.corrupted(),
        heap.max_overrun()
    );

    // With fault-on-overflow the process "crashes" instead.
    let mut crashing = LibSpf2Expander::new(LibSpf2Config {
        version: LibSpf2Version::V1_2_10,
        fault_on_overflow: true,
        overrun_cap: 100,
    });
    match crashing.expand(&ms, &ctx, false) {
        Err(fault) => println!("  with fault-on-overflow: {fault}"),
        Ok(_) => unreachable!("this input always overflows"),
    }
    println!();

    // ---- Why the measurement is benign. ----------------------------------
    println!("== why the paper's probe never corrupts anything ==");
    let probe = MacroString::parse("%{d1r}.abc.s1.spf-test.dns-lab.org").expect("valid");
    let ctx = MacroContext::new(
        "mmj7yzdm0tbk",
        "abc.s1.spf-test.dns-lab.org",
        "203.0.113.25".parse().expect("ip"),
    );
    let mut vulnerable = LibSpf2Expander::vulnerable();
    let out = vulnerable.expand(&probe, &ctx, false).expect("expansion");
    println!("  probe record uses lowercase %{{d1r}}: no URL encoding, no overflow path");
    println!("  expansion (the DNS fingerprint): {out}");
    println!("  heap corrupted: {}", vulnerable.heap().corrupted());

    // ---- The patched library, same inputs. -------------------------------
    println!();
    println!("== patched libSPF2, same attacker inputs ==");
    let mut patched = LibSpf2Expander::patched();
    let ms = MacroString::parse("%{D1R}").expect("valid");
    let ctx = MacroContext::new("u", long_domain, "192.0.2.66".parse().expect("ip"));
    let out = patched.expand(&ms, &ctx, false).expect("expansion");
    println!("  expansion: {out}");
    println!("  heap corrupted: {}", patched.heap().corrupted());
}
