//! Counterfactual analysis — what the paper could not do with the real
//! Internet, the simulator does trivially: re-run the identical
//! four-month campaign under alternative assumptions and compare the
//! final vulnerable share.
//!
//! ```text
//! cargo run -p spfail --release --example counterfactuals
//! cargo run -p spfail --release --example counterfactuals -- --shards 4 --incremental
//! ```
//!
//! Accepts the shared campaign flags (`examples/campaign_args.rs`):
//! `--shards N` runs each scenario on the sharded engine and
//! `--incremental` cuts the per-round probe volume — neither changes a
//! single measured number.

use spfail::prober::SnapshotStatus;
use spfail::world::{World, WorldConfig};

#[path = "campaign_args.rs"]
mod campaign_args;
use campaign_args::CampaignArgs;

struct Scenario {
    name: &'static str,
    commentary: &'static str,
    config: WorldConfig,
}

fn base_config() -> WorldConfig {
    WorldConfig {
        // Big enough that a handful of heavily shared hosts cannot swing
        // the comparison; each scenario runs in a few seconds in release.
        scale: 0.08,
        ..WorldConfig::default()
    }
}

fn main() {
    let args = CampaignArgs::parse();
    let scenarios = [
        Scenario {
            name: "baseline",
            commentary: "the world as measured by the paper",
            config: base_config(),
        },
        Scenario {
            name: "no distro auto-updates",
            commentary: "every patch requires manual admin action \
                         (auto_update_share = 0)",
            config: WorldConfig {
                auto_update_share: 0.0,
                ..base_config()
            },
        },
        Scenario {
            name: "universal auto-updates",
            commentary: "every patching host rides its distro's wave \
                         (auto_update_share = 1)",
            config: WorldConfig {
                auto_update_share: 1.0,
                ..base_config()
            },
        },
        Scenario {
            name: "no prober blacklisting",
            commentary: "perfect long-term observability \
                         (blacklist_rate = 0)",
            config: WorldConfig {
                blacklist_rate: 0.0,
                ..base_config()
            },
        },
        Scenario {
            name: "top-1000 patch like everyone",
            commentary: "the most-visited domains lose their inertia \
                         (top1000_patch_multiplier = 1)",
            config: WorldConfig {
                top1000_patch_multiplier: 1.0,
                ..base_config()
            },
        },
    ];

    println!(
        "{:<32} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "hosts", "by-w1end", "by-discl", "by-end", "unknown"
    );
    println!("{}", "-".repeat(80));
    for scenario in scenarios {
        let world = World::generate(scenario.config);
        let data = args.builder().run(&world).data;
        let patched_by = |day: u16| {
            data.tracked
                .iter()
                .filter(|&&h| data.first_patched_day(h).is_some_and(|d| d <= day))
                .count()
        };
        let unknown = data
            .snapshot
            .values()
            .filter(|s| **s == SnapshotStatus::Unknown)
            .count();
        println!(
            "{:<32} {:>7} {:>9} {:>9} {:>9} {:>8}",
            scenario.name,
            data.tracked.len(),
            patched_by(spfail::world::Timeline::WINDOW1_END),
            patched_by(spfail::world::Timeline::PUBLIC_DISCLOSURE),
            patched_by(spfail::world::Timeline::END),
            unknown,
        );
        println!("    {}", scenario.commentary);
    }

    println!();
    println!(
        "reading: with common random numbers every scenario probes the *same*\n\
         hosts; the columns show when their patches become observable. Killing\n\
         auto-updates thins the pre-disclosure waves (Gentoo/Arch ride-alongs)\n\
         and smears Debian's post-disclosure cliff into a manual trickle;\n\
         disabling blacklisting is the big observability lever — far more\n\
         patches become *measurable* before the study ends (the by-end\n\
         column), exactly the §7.6 blind spot. The unknown bucket is churned\n\
         spam domains, which no probing policy can recover."
    );
}
