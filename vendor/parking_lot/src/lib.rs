//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library primitives behind `parking_lot`'s
//! poison-free API: `lock()` returns the guard directly. A poisoned std
//! lock only arises after a panic while holding the lock, at which point
//! the simulation is already aborting — recovering the inner guard keeps
//! the panic message focused on the original failure.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u8);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
