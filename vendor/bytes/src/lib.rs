//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] as a growable byte buffer plus the [`Buf`] /
//! [`BufMut`] trait methods the DNS wire codec uses. All reads are
//! big-endian, matching the network byte order of RFC 1035.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a byte cursor; implemented for `&[u8]`, which advances
/// the slice itself as bytes are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, tail) = self.split_at(1);
        *self = tail;
        head[0]
    }

    fn get_u16(&mut self) -> u16 {
        let (head, tail) = self.split_at(2);
        *self = tail;
        u16::from_be_bytes([head[0], head[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_be_bytes([head[0], head[1], head[2], head[3]])
    }
}

/// Append access to a byte buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer. Dereferences to `[u8]` for indexing and
/// in-place patching (e.g. back-filling length fields).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// The buffer contents as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"xy");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 9);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor, b"xy");
    }

    #[test]
    fn deref_allows_in_place_patching() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u8(7);
        buf[0..2].copy_from_slice(&9u16.to_be_bytes());
        assert_eq!(buf.to_vec(), vec![0, 9, 7]);
        assert_eq!(buf.len(), 3);
    }
}
