//! Offline stand-in for `serde_json`.
//!
//! Provides the value-model half of the crate — [`Value`], [`Number`],
//! [`Map`], the [`json!`] macro, indexing, conversions, and
//! [`to_string_pretty`] — without the serde trait machinery. The report
//! crate builds every exhibit as a `Value` tree, so this surface is all
//! the workspace needs. `Map` is backed by a `BTreeMap`, making key
//! order (and therefore serialized output) deterministic.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministically ordered keys.
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as `f64`, always possible.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            N::NegInt(v) => u64::try_from(v).ok(),
            N::Float(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => {
                i64::try_from(a).is_ok_and(|a| a == b)
            }
            // Floats only compare equal to floats, as in serde_json.
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON object. Key order is sorted (BTreeMap-backed), so output is
/// stable across runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert a key/value pair, returning any displaced value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Map {
        Map {
            inner: iter.into_iter().map(|(k, v)| (k, v.into())).collect(),
        }
    }
}

impl Value {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object lookup; `None` when not an object or key absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number(N::PosInt(v as u64)))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                if v >= 0 {
                    Value::Number(Number(N::PosInt(v as u64)))
                } else {
                    Value::Number(Number(N::NegInt(v as i64)))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(N::Float(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number(N::Float(v as f64)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl From<Number> for Value {
    fn from(v: Number) -> Value {
        Value::Number(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<BTreeMap<String, T>> for Value {
    fn from(v: BTreeMap<String, T>) -> Value {
        Value::Object(Map {
            inner: v.into_iter().map(|(k, v)| (k, v.into())).collect(),
        })
    }
}

// Borrowed copies of the scalar types above, so iterator items like
// `&u16` or `&f64` convert without an explicit dereference.
macro_rules! from_ref {
    ($($ty:ty),*) => {$(
        impl From<&$ty> for Value {
            fn from(v: &$ty) -> Value {
                Value::from(*v)
            }
        }
    )*};
}

from_ref!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// Conversion by reference, used by the [`json!`] macro so interpolated
/// expressions are borrowed (as serde_json's `Serialize`-based macro
/// does) rather than moved out of their owner.
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Convert any [`ToJson`] borrow into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! to_json_via_copy {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_json_via_copy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for Number {
    fn to_json_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl ToJson for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

// Tuples serialize as fixed-length arrays, as under serde.
impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json_value(&self) -> Value {
        Value::Object(Map {
            inner: self
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        })
    }
}

macro_rules! eq_num {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(n) => *n == match Value::from(*other) {
                        Value::Number(m) => m,
                        _ => return false,
                    },
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization error. The value model is always serializable, so this
/// is never produced in practice, but the `Result` return keeps the
/// serde_json call-site signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Render a value as human-readable JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Render a value as compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    fn write_compact(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    write_compact(out, item);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Build a [`Value`] from a JSON-like literal, mirroring serde_json's
/// macro of the same name (nested objects/arrays, interpolated
/// expressions, trailing commas).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Recursive muncher backing [`json!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////// array elements ////////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////// object entries ////////////////////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////// values ////////////////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_literals_and_interpolation() {
        let day = 42u16;
        let rate = 0.5f64;
        let v = json!({
            "day": day,
            "nested": {"rate": rate, "tags": ["a", "b"]},
            "empty": [],
            "flag": true,
            "nothing": null,
        });
        assert_eq!(v["day"], 42);
        assert_eq!(v["nested"]["rate"], 0.5);
        assert_eq!(v["nested"]["tags"][1], "b");
        assert!(v["nothing"].is_null());
        assert!(v["missing"].is_null());
        assert_eq!(v["flag"], true);
    }

    #[test]
    fn from_covers_collections_and_references() {
        let rows: Vec<usize> = vec![1, 2, 3];
        let v = Value::from(rows);
        assert_eq!(v[2], 3);

        let mut m: BTreeMap<String, usize> = BTreeMap::new();
        m.insert("k".into(), 9);
        assert_eq!(Value::from(m)["k"], 9);

        let d: &u16 = &7;
        let f: &f64 = &1.25;
        assert_eq!(json!({"d": d, "f": f}), json!({"d": 7u16, "f": 1.25}));
    }

    #[test]
    fn pretty_output_is_deterministic_and_escaped() {
        let v = json!({"b": 1, "a": "x\"y\n"});
        let s = to_string_pretty(&v).expect("serializes");
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\\n\",\n  \"b\": 1\n}");
        assert_eq!(to_string(&v).expect("serializes"), "{\"a\":\"x\\\"y\\n\",\"b\":1}");
    }

    #[test]
    fn numbers_compare_across_widths_but_not_kinds() {
        assert_eq!(json!(30usize), 30);
        assert_eq!(json!(30u64), 30i64);
        assert_ne!(json!(30u64), 30.0);
        assert_eq!(json!(1.5), 1.5);
        assert_eq!(json!(-2), -2);
        assert_eq!(Number(N::Float(2.0)).to_string(), "2.0");
    }
}
