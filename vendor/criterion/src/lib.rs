//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use — `Criterion`, `benchmark_group`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! on top of a plain wall-clock measurement loop. Statistical analysis
//! is reduced to median-of-samples, which is enough to compare the
//! relative throughput numbers the benches exist to demonstrate.
//!
//! Set `SPFAIL_BENCH_FAST=1` to shrink warm-up and sampling for smoke
//! runs (e.g. CI or `cargo test --benches`).

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

fn fast_mode() -> bool {
    std::env::var_os("SPFAIL_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Drives the measurement loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Measure `routine` repeatedly. The number of iterations per sample
    /// is calibrated from a warm-up pass so each sample is long enough
    /// to time reliably but the whole benchmark stays fast.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: also determines how many iterations fit in ~5ms.
        let warmup_start = Instant::now();
        black_box(routine());
        let single = warmup_start.elapsed();
        let target = Duration::from_millis(if fast_mode() { 1 } else { 5 });
        self.iters_per_sample = if single >= target {
            1
        } else {
            let single_nanos = single.as_nanos().max(1);
            (target.as_nanos() / single_nanos).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median time per iteration across samples.
    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_sample.max(1) as u32
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Top-level benchmark registry; one per `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: if fast_mode() { 3 } else { 20 },
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run a single benchmark and print its median time.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if fast_mode() { n.min(3) } else { n.max(2) };
        self
    }

    /// Override the target measurement time. Accepted for API
    /// compatibility; the stand-in's sampling is already time-bounded.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Finish the group. No summary output beyond the per-bench lines.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_count: usize, mut f: F) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    println!(
        "{label:<50} time: [{}] ({} samples x {} iters)",
        format_duration(bencher.median_per_iter()),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(4);
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert_eq!(b.samples.len(), 4);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn median_scales_by_iteration_count() {
        let mut b = Bencher::new(3);
        b.samples = vec![
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            Duration::from_nanos(200),
        ];
        b.iters_per_sample = 2;
        assert_eq!(b.median_per_iter(), Duration::from_nanos(100));
    }

    #[test]
    fn duration_formatting_covers_magnitudes() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
