//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The API mirrors
//! crossbeam 0.8: the scope closure receives a `&Scope`, `spawn` passes
//! the scope back into the thread body, and `join` returns a `Result`.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::thread as std_thread;

    /// A handle for spawning threads that may borrow from the caller's
    /// stack frame.
    pub struct Scope<'env, 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
            'env: 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned.
    /// All spawned threads are joined before `scope` returns. Unlike
    /// crossbeam the result is infallible (panics propagate), but the
    /// `Result` wrapper is kept for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope completes");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().expect("no panic"))
                .join()
                .expect("no panic")
        })
        .expect("scope completes");
        assert_eq!(n, 7);
    }
}
