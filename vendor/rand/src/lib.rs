//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`rngs::SmallRng`], the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, and [`Error`]. The generator
//! is xoshiro256++ seeded through splitmix64 — the same construction the
//! real `rand` 0.8 uses for `SmallRng` on 64-bit targets — so statistical
//! quality is comparable, though the exact streams differ from upstream.
//! Nothing in this repository depends on upstream's concrete streams; all
//! determinism requirements are "same seed, same stream" within this
//! implementation.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations. The vendored generators are
/// infallible, so this is never actually produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; never fails for the vendored generators.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Uniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range (`rng.gen_range(a..b)`).
pub trait UniformRange: Sized {
    /// Draw one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased uniform draw in `[0, span)` via Lemire's widening-multiply
/// rejection method.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_range_uint {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + below_u64(rng, span) as $t
            }
        }
    )*};
}

uniform_range_uint!(u8, u16, u32, u64, usize);

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s full domain.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 of any
            // seed never yields four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_calibrated() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_is_unbiased_at_boundaries() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0u64..7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
